//===- analysis/PointsTo.cpp - Flow-insensitive points-to analysis ---------===//

#include "analysis/PointsTo.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <numeric>

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

std::string MemObject::name(const Module &M) const {
  if (Kind == Kind::Global)
    return "@" + M.Globals[GlobalId].Name;
  return "heap:" + M.function(FuncId).Name + "#" + std::to_string(Alloc);
}

namespace {

/// Copy-edge constraint program shared by both solvers.
struct Constraints {
  std::vector<std::pair<uint32_t, uint32_t>> Copies; ///< (From, To) vars.
  std::vector<std::pair<uint32_t, uint32_t>> Bases;  ///< (Var, Obj).
};

} // namespace

PointsTo::PointsTo(const Module &M, PointsToFlavor Flavor) : M(M) {
  FuncBase.resize(M.Functions.size());
  NumVars = 0;
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    FuncBase[F] = NumVars;
    NumVars += M.function(F).NumRegs;
  }

  buildObjects(M);
  ObjWords = (numObjects() + 63) / 64;
  Pts.assign(NumVars, std::vector<uint64_t>(ObjWords, 0));

  if (Flavor == PointsToFlavor::Andersen)
    solveAndersen(M);
  else
    solveSteensgaard(M);
}

void PointsTo::buildObjects(const Module &M) {
  for (uint32_t G = 0; G != M.Globals.size(); ++G) {
    MemObject Obj;
    Obj.Kind = MemObject::Kind::Global;
    Obj.GlobalId = G;
    Objects.push_back(Obj);
  }
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    for (const BasicBlock &BB : M.function(F).Blocks) {
      for (const Instruction &Inst : BB.Insts) {
        if (Inst.Op != Opcode::Alloc)
          continue;
        MemObject Obj;
        Obj.Kind = MemObject::Kind::HeapSite;
        Obj.FuncId = F;
        Obj.Alloc = Inst.Ident;
        uint32_t Id = static_cast<uint32_t>(Objects.size());
        Objects.push_back(Obj);
        AllocSiteIds.push_back(
            {(static_cast<uint64_t>(F) << 32) | Inst.Ident, Id});
      }
    }
  }
  std::sort(AllocSiteIds.begin(), AllocSiteIds.end());
}

static uint32_t lookupAllocSite(
    const std::vector<std::pair<uint64_t, uint32_t>> &Sites, uint32_t FuncId,
    InstId Ident) {
  uint64_t Key = (static_cast<uint64_t>(FuncId) << 32) | Ident;
  auto It = std::lower_bound(Sites.begin(), Sites.end(),
                             std::make_pair(Key, 0u));
  assert(It != Sites.end() && It->first == Key && "unknown alloc site");
  return It->second;
}

static Constraints buildConstraints(
    const Module &M, const std::vector<uint32_t> &FuncBase,
    const std::vector<std::pair<uint64_t, uint32_t>> &AllocSites) {
  Constraints C;
  auto var = [&](uint32_t F, Reg R) { return FuncBase[F] + R; };

  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    for (const BasicBlock &BB : M.function(F).Blocks) {
      for (const Instruction &Inst : BB.Insts) {
        switch (Inst.Op) {
        case Opcode::AddrGlobal:
          C.Bases.push_back({var(F, Inst.Dst), Inst.Id});
          break;
        case Opcode::Alloc:
          C.Bases.push_back(
              {var(F, Inst.Dst), lookupAllocSite(AllocSites, F, Inst.Ident)});
          break;
        case Opcode::Move:
          C.Copies.push_back({var(F, Inst.A), var(F, Inst.Dst)});
          break;
        case Opcode::PtrAdd:
          // Field-insensitive: the result references the same objects as
          // the base (this is the Steensgaard/Andersen conservatism the
          // paper's symbolic-bounds optimization compensates for).
          C.Copies.push_back({var(F, Inst.A), var(F, Inst.Dst)});
          break;
        case Opcode::Call:
        case Opcode::Spawn:
          for (uint32_t I = 0; I != Inst.Args.size(); ++I)
            C.Copies.push_back(
                {var(F, Inst.Args[I]), var(Inst.Id, static_cast<Reg>(I))});
          break;
        default:
          break;
        }
      }
    }
  }
  return C;
}

void PointsTo::solveAndersen(const Module &M) {
  Constraints C = buildConstraints(M, FuncBase, AllocSiteIds);

  std::vector<std::vector<uint32_t>> Succ(NumVars);
  for (auto &[From, To] : C.Copies)
    Succ[From].push_back(To);

  std::deque<uint32_t> Work;
  std::vector<bool> Queued(NumVars, false);
  auto enqueue = [&](uint32_t V) {
    if (!Queued[V]) {
      Queued[V] = true;
      Work.push_back(V);
    }
  };

  for (auto &[V, Obj] : C.Bases) {
    Pts[V][Obj >> 6] |= 1ull << (Obj & 63);
    enqueue(V);
  }

  while (!Work.empty()) {
    uint32_t V = Work.front();
    Work.pop_front();
    Queued[V] = false;
    for (uint32_t To : Succ[V]) {
      bool Changed = false;
      for (uint32_t W = 0; W != ObjWords; ++W) {
        uint64_t Merged = Pts[To][W] | Pts[V][W];
        if (Merged != Pts[To][W]) {
          Pts[To][W] = Merged;
          Changed = true;
        }
      }
      if (Changed)
        enqueue(To);
    }
  }
}

void PointsTo::solveSteensgaard(const Module &M) {
  Constraints C = buildConstraints(M, FuncBase, AllocSiteIds);

  // Union-find over pointer variables: every assignment unifies both
  // sides (the hallmark of Steensgaard's O(n α(n)) analysis).
  std::vector<uint32_t> Parent(NumVars);
  std::iota(Parent.begin(), Parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t V) {
    while (Parent[V] != V) {
      Parent[V] = Parent[Parent[V]];
      V = Parent[V];
    }
    return V;
  };

  for (auto &[From, To] : C.Copies)
    Parent[find(From)] = find(To);

  for (auto &[V, Obj] : C.Bases) {
    uint32_t R = find(V);
    Pts[R][Obj >> 6] |= 1ull << (Obj & 63);
  }

  // Materialize each variable's set from its representative.
  for (uint32_t V = 0; V != NumVars; ++V) {
    uint32_t R = find(V);
    if (R != V)
      Pts[V] = Pts[R];
  }
}

std::vector<uint32_t> PointsTo::pointsTo(uint32_t FuncId, Reg R) const {
  std::vector<uint32_t> Result;
  const auto &Bits = Pts[varId(FuncId, R)];
  for (uint32_t W = 0; W != ObjWords; ++W) {
    uint64_t Word = Bits[W];
    while (Word) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
      Result.push_back(W * 64 + Bit);
      Word &= Word - 1;
    }
  }
  return Result;
}

bool PointsTo::mayAlias(uint32_t FuncA, Reg RegA, uint32_t FuncB,
                        Reg RegB) const {
  const auto &A = Pts[varId(FuncA, RegA)];
  const auto &B = Pts[varId(FuncB, RegB)];
  for (uint32_t W = 0; W != ObjWords; ++W)
    if (A[W] & B[W])
      return true;
  return false;
}

std::vector<uint32_t> PointsTo::accessedObjects(uint32_t FuncId,
                                                InstId Ident) const {
  const Function &Func = M.function(FuncId);
  const Instruction *Inst = Func.findInst(Ident);
  assert(Inst && Inst->isMemoryAccess() && "not a memory access");
  return pointsTo(FuncId, Inst->A);
}
