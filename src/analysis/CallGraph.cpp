//===- analysis/CallGraph.cpp - Call graph and SCC order -------------------===//

#include "analysis/CallGraph.h"

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

CallGraph::CallGraph(const Module &M) {
  uint32_t N = static_cast<uint32_t>(M.Functions.size());
  Callees.resize(N);
  Callers.resize(N);
  MultiSpawn.assign(N, false);

  std::vector<unsigned> SpawnCount(N, 0);

  for (uint32_t F = 0; F != N; ++F) {
    const Function &Func = M.function(F);
    LoopInfo Loops(Func);
    for (BlockId B = 0; B != Func.numBlocks(); ++B) {
      bool InLoop = Loops.innermostLoop(B) != nullptr;
      for (const Instruction &Inst : Func.block(B).Insts) {
        if (Inst.Op != Opcode::Call && Inst.Op != Opcode::Spawn)
          continue;
        Callees[F].push_back(Inst.Id);
        Callers[Inst.Id].push_back(F);
        if (Inst.Op == Opcode::Spawn) {
          SpawnTargets.push_back(Inst.Id);
          SpawnCount[Inst.Id] += InLoop ? 2 : 1;
        }
      }
    }
  }

  auto dedup = [](std::vector<uint32_t> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  };
  for (uint32_t F = 0; F != N; ++F) {
    dedup(Callees[F]);
    dedup(Callers[F]);
  }
  dedup(SpawnTargets);

  for (uint32_t F = 0; F != N; ++F)
    MultiSpawn[F] = SpawnCount[F] >= 2;

  ThreadRoots = SpawnTargets;
  ThreadRoots.push_back(M.MainFunction);
  dedup(ThreadRoots);

  computeSccs();
}

void CallGraph::computeSccs() {
  // Tarjan's algorithm; SCCs come out in reverse topological order of the
  // condensation, i.e. callee-first — exactly the bottom-up order RELAY
  // wants.
  uint32_t N = numFunctions();
  SccIds.assign(N, ~0u);
  std::vector<uint32_t> Index(N, ~0u), LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

  std::function<void(uint32_t)> strongConnect = [&](uint32_t V) {
    Index[V] = LowLink[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;

    for (uint32_t W : Callees[V]) {
      if (Index[W] == ~0u) {
        strongConnect(W);
        LowLink[V] = std::min(LowLink[V], LowLink[W]);
      } else if (OnStack[W]) {
        LowLink[V] = std::min(LowLink[V], Index[W]);
      }
    }

    if (LowLink[V] == Index[V]) {
      std::vector<uint32_t> Scc;
      for (;;) {
        uint32_t W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        SccIds[W] = NumSccs;
        Scc.push_back(W);
        if (W == V)
          break;
      }
      std::sort(Scc.begin(), Scc.end());
      Sccs.push_back(std::move(Scc));
      ++NumSccs;
    }
  };

  for (uint32_t V = 0; V != N; ++V)
    if (Index[V] == ~0u)
      strongConnect(V);
}

std::vector<uint32_t> CallGraph::reachableFrom(uint32_t Root) const {
  std::vector<bool> Seen(numFunctions(), false);
  std::vector<uint32_t> Work = {Root}, Result;
  Seen[Root] = true;
  while (!Work.empty()) {
    uint32_t F = Work.back();
    Work.pop_back();
    Result.push_back(F);
    for (uint32_t C : Callees[F])
      if (!Seen[C]) {
        Seen[C] = true;
        Work.push_back(C);
      }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}
