//===- analysis/Dominators.h - Dominator computation ------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator analysis over a function's CFG (Cooper-Harvey-
/// Kennedy style on reverse postorder). Used by LoopInfo to find natural
/// loops via back edges.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_DOMINATORS_H
#define CHIMERA_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace chimera {
namespace analysis {

class Dominators {
public:
  explicit Dominators(const ir::Function &Func);

  /// Immediate dominator of \p Block; the entry block's idom is itself.
  /// Unreachable blocks report NoBlock.
  ir::BlockId idom(ir::BlockId Block) const { return Idom[Block]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(ir::BlockId A, ir::BlockId B) const;

  bool reachable(ir::BlockId Block) const {
    return Idom[Block] != ir::NoBlock;
  }

  /// Blocks in reverse postorder of the CFG (reachable blocks only).
  const std::vector<ir::BlockId> &reversePostorder() const { return RPO; }

  /// Predecessor lists (computed as a side product; handy for clients).
  const std::vector<ir::BlockId> &preds(ir::BlockId Block) const {
    return Preds[Block];
  }

private:
  std::vector<ir::BlockId> Idom;
  std::vector<ir::BlockId> RPO;
  std::vector<uint32_t> RpoIndex;
  std::vector<std::vector<ir::BlockId>> Preds;
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_DOMINATORS_H
