//===- analysis/MayHappenInParallel.cpp - Sound MHP analysis ---------------===//

#include "analysis/MayHappenInParallel.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/PointsTo.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

/// Wait counts saturate here: any interval bound reaching the cap is
/// widened to kUnbounded, which bounds every fixpoint lattice height.
static constexpr uint32_t HiCap = 64;
static constexpr uint32_t NoFunc = ~0u;

const char *analysis::mhpModeName(MhpMode Mode) {
  switch (Mode) {
  case MhpMode::Off:
    return "off";
  case MhpMode::ForkJoin:
    return "forkjoin";
  case MhpMode::Barrier:
    return "barrier";
  }
  return "off";
}

support::Expected<MhpMode> analysis::parseMhpMode(const std::string &Text) {
  if (Text == "off")
    return MhpMode::Off;
  if (Text == "forkjoin")
    return MhpMode::ForkJoin;
  if (Text == "barrier")
    return MhpMode::Barrier;
  return support::Error::failure("unknown MHP mode '" + Text +
                                 "' (expected off|forkjoin|barrier)");
}

MayHappenInParallel::Interval MayHappenInParallel::meet(Interval A,
                                                        Interval B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  Interval Out;
  Out.Lo = std::min(A.Lo, B.Lo);
  Out.Hi = (A.Hi == kUnbounded || B.Hi == kUnbounded) ? kUnbounded
                                                      : std::max(A.Hi, B.Hi);
  return Out;
}

MayHappenInParallel::Interval MayHappenInParallel::add(Interval A,
                                                       Interval B) {
  if (A.isBottom() || B.isBottom())
    return bottomInterval();
  Interval Out;
  Out.Lo = std::min(A.Lo + B.Lo, HiCap); // Lowering Lo is conservative.
  Out.Hi = (A.Hi == kUnbounded || B.Hi == kUnbounded || A.Hi + B.Hi >= HiCap)
               ? kUnbounded
               : A.Hi + B.Hi;
  return Out;
}

namespace {

const Instruction *lastDefInBlock(const BasicBlock &BB, Reg R) {
  if (R == NoReg)
    return nullptr;
  const Instruction *Def = nullptr;
  for (const Instruction &I : BB.Insts)
    if (I.Dst == R)
      Def = &I;
  return Def;
}

/// A canonical counted loop: `for (i = c0; i < bound; i = i + 1)` where
/// the bound is a constant or a load of a never-stored global, the
/// induction variable is updated only in latches, and the loop exits
/// only through the header into a block reached from nowhere else —
/// so reaching the exit proves exactly max(0, bound - c0) iterations ran.
struct CountedLoop {
  bool Valid = false;
  Reg IndVar = NoReg;
  int64_t Init = 0;
  bool BoundIsGlobal = false;
  uint32_t BoundGlobal = 0;
  int64_t BoundConst = 0;
  BlockId Exit = NoBlock;
};

CountedLoop matchCountedLoop(const Function &F, const Loop &L,
                             const Dominators &Dom,
                             const std::vector<char> &NeverStored) {
  CountedLoop C;
  const BasicBlock &H = F.block(L.Header);
  if (!H.hasTerminator() || H.terminator().Op != Opcode::CondBr)
    return C;
  // A header that is also a latch has do-while semantics our init/trip
  // reasoning does not cover.
  for (BlockId Latch : L.Latches)
    if (Latch == L.Header)
      return C;
  const Instruction &Term = H.terminator();
  if (!L.contains(Term.Succ0) || L.contains(Term.Succ1))
    return C;
  C.Exit = Term.Succ1;

  const Instruction *Cmp = lastDefInBlock(H, Term.A);
  if (!Cmp || Cmp->Op != Opcode::Binary || Cmp->BOp != BinOp::Lt)
    return C;
  C.IndVar = Cmp->A;

  const Instruction *Bound = lastDefInBlock(H, Cmp->B);
  if (!Bound)
    return C;
  if (Bound->Op == Opcode::ConstInt) {
    C.BoundConst = Bound->Imm;
  } else if (Bound->Op == Opcode::Load) {
    const Instruction *Addr = lastDefInBlock(H, Bound->A);
    if (!Addr || Addr->Op != Opcode::AddrGlobal || Addr->A != NoReg)
      return C;
    if (Addr->Id >= NeverStored.size() || !NeverStored[Addr->Id])
      return C;
    C.BoundIsGlobal = true;
    C.BoundGlobal = Addr->Id;
  } else {
    return C;
  }

  // Exits only through the header.
  for (BlockId B : L.Blocks)
    if (B != L.Header)
      for (BlockId S : F.successors(B))
        if (!L.contains(S))
          return C;

  // Induction variable updated exactly once per latch, as IndVar + 1,
  // and nowhere else inside the loop.
  uint32_t Defs = 0;
  for (BlockId B : L.Blocks)
    for (const Instruction &I : F.block(B).Insts)
      if (I.Dst == C.IndVar)
        ++Defs;
  if (Defs != L.Latches.size())
    return C;
  for (BlockId Latch : L.Latches) {
    const BasicBlock &LB = F.block(Latch);
    const Instruction *Upd = lastDefInBlock(LB, C.IndVar);
    if (!Upd)
      return C;
    const Instruction *AddI = Upd;
    if (Upd->Op == Opcode::Move)
      AddI = lastDefInBlock(LB, Upd->A);
    if (!AddI || AddI->Op != Opcode::Binary || AddI->BOp != BinOp::Add ||
        AddI->A != C.IndVar)
      return C;
    const Instruction *One = lastDefInBlock(LB, AddI->B);
    if (!One || One->Op != Opcode::ConstInt || One->Imm != 1)
      return C;
  }

  if (L.Preheader == NoBlock)
    return C;
  const Instruction *InitI = lastDefInBlock(F.block(L.Preheader), C.IndVar);
  if (InitI && InitI->Op == Opcode::Move)
    InitI = lastDefInBlock(F.block(L.Preheader), InitI->A);
  if (!InitI || InitI->Op != Opcode::ConstInt)
    return C;
  C.Init = InitI->Imm;

  // Reaching the exit block must imply the loop completed.
  for (BlockId P : Dom.preds(C.Exit))
    if (P != L.Header)
      return C;

  C.Valid = true;
  return C;
}

bool sameTrip(const CountedLoop &A, const CountedLoop &B) {
  if (A.BoundIsGlobal != B.BoundIsGlobal || A.Init != B.Init)
    return false;
  return A.BoundIsGlobal ? A.BoundGlobal == B.BoundGlobal
                         : A.BoundConst == B.BoundConst;
}

uint64_t tripCount(const CountedLoop &C, const Module &M) {
  int64_t Bound = C.BoundIsGlobal ? M.Globals[C.BoundGlobal].Init
                                  : C.BoundConst;
  int64_t Trips = Bound - C.Init;
  return Trips < 0 ? 0 : static_cast<uint64_t>(Trips);
}

} // namespace

MayHappenInParallel::MayHappenInParallel(const Module &M, const CallGraph &CG,
                                         const PointsTo &PT, MhpMode Mode)
    : M(M), CG(CG), Mode(Mode), Main(M.MainFunction) {
  if (Mode == MhpMode::Off)
    return;
  buildCommon(PT);
  buildForkJoin(PT);
  if (Mode == MhpMode::Barrier)
    buildBarrier();
}

void MayHappenInParallel::buildCommon(const PointsTo &PT) {
  const uint32_t N = static_cast<uint32_t>(M.Functions.size());
  Roots = CG.threadRoots();
  RootBit.assign(N, -1);
  if (Roots.size() <= 64)
    for (size_t I = 0; I != Roots.size(); ++I)
      RootBit[Roots[I]] = static_cast<int>(I);

  // Spawn-closure root mask per function (over call+spawn edges; a call
  // or spawn of F may transitively bring any of these roots to life).
  std::vector<uint64_t> DirectSpawns(N, 0);
  for (uint32_t F = 0; F != N; ++F)
    for (const BasicBlock &BB : M.function(F).Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Spawn) {
          int Bit = I.Id < N ? RootBit[I.Id] : -1;
          if (Bit >= 0)
            DirectSpawns[F] |= 1ull << Bit;
        }
  ClosureRoots.assign(N, 0);
  for (uint32_t F = 0; F != N; ++F)
    for (uint32_t R : CG.reachableFrom(F))
      ClosureRoots[F] |= DirectSpawns[R];

  // Call-only reachability from main (spawned code runs on other roots'
  // threads and is classified under those roots).
  CallReachMain.assign(N, 0);
  std::deque<uint32_t> Work;
  Work.push_back(Main);
  CallReachMain[Main] = 1;
  while (!Work.empty()) {
    uint32_t F = Work.front();
    Work.pop_front();
    for (const BasicBlock &BB : M.function(F).Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Call && I.Id < N && !CallReachMain[I.Id]) {
          CallReachMain[I.Id] = 1;
          Work.push_back(I.Id);
        }
  }

  // Which globals may be written, and by which store instructions
  // (points-to based, so stores through pointers are included).
  NeverStoredGlobal.assign(M.Globals.size(), 1);
  GlobalStores.assign(M.Globals.size(), {});
  const std::vector<MemObject> &Objs = PT.objects();
  for (uint32_t F = 0; F != N; ++F)
    for (const BasicBlock &BB : M.function(F).Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Store)
          for (uint32_t Obj : PT.accessedObjects(F, I.Ident))
            if (Objs[Obj].Kind == MemObject::Kind::Global) {
              NeverStoredGlobal[Objs[Obj].GlobalId] = 0;
              GlobalStores[Objs[Obj].GlobalId].push_back({F, I.Ident});
            }
}

void MayHappenInParallel::buildForkJoin(const PointsTo &PT) {
  (void)PT;
  const Function &MainF = M.function(Main);
  Dominators Dom(MainF);
  LoopInfo LI(MainF);

  // Register def counts in main, for single-assignment chain chasing.
  std::vector<uint32_t> DefCount(MainF.NumRegs, 0);
  std::vector<const Instruction *> DefInst(MainF.NumRegs, nullptr);
  std::vector<BlockId> DefBlock(MainF.NumRegs, NoBlock);
  for (BlockId B = 0; B != MainF.numBlocks(); ++B)
    for (const Instruction &I : MainF.block(B).Insts)
      if (I.Dst != NoReg && I.Dst < MainF.NumRegs) {
        ++DefCount[I.Dst];
        DefInst[I.Dst] = &I;
        DefBlock[I.Dst] = B;
      }
  auto uniqueDef = [&](Reg R) -> const Instruction * {
    return (R != NoReg && R < DefCount.size() && DefCount[R] == 1)
               ? DefInst[R]
               : nullptr;
  };

  // Counted-loop match per top-level loop of main, and per loop for
  // instance counting.
  std::vector<CountedLoop> LoopMatch(LI.numLoops());
  for (size_t I = 0; I != LI.numLoops(); ++I)
    LoopMatch[I] = matchCountedLoop(MainF, *LI.loops()[I], Dom,
                                    NeverStoredGlobal);
  auto loopIndex = [&](const Loop *L) -> int {
    for (size_t I = 0; I != LI.numLoops(); ++I)
      if (LI.loops()[I].get() == L)
        return static_cast<int>(I);
    return -1;
  };

  // The only store instruction in the whole module that may touch
  // global \p G is (main, Ident)?
  auto exclusiveStore = [&](uint32_t G, InstId Ident) {
    if (G >= GlobalStores.size())
      return false;
    for (const auto &[F, I] : GlobalStores[G])
      if (F != Main || I != Ident)
        return false;
    return !GlobalStores[G].empty();
  };

  // -- Enumerate gen points: spawn sites in main, plus calls from main
  // whose callee closure may spawn.
  for (BlockId B = 0; B != MainF.numBlocks(); ++B) {
    const BasicBlock &BB = MainF.block(B);
    for (uint32_t Idx = 0; Idx != BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      if (I.Op == Opcode::Call) {
        uint64_t Mask = I.Id < ClosureRoots.size() ? ClosureRoots[I.Id] : 0;
        if (!Mask)
          continue;
        GenPoint P;
        P.Inst = I.Ident;
        P.Target = NoFunc;
        for (size_t R = 0; R != Roots.size(); ++R)
          if (Mask >> R & 1)
            P.NeverRoots.push_back(Roots[R]);
        P.InLoop = LI.innermostLoop(B) != nullptr;
        Gens.push_back(std::move(P));
        continue;
      }
      if (I.Op != Opcode::Spawn)
        continue;

      GenPoint P;
      P.Inst = I.Ident;
      P.Target = I.Id;
      uint64_t Sub = I.Id < ClosureRoots.size() ? ClosureRoots[I.Id] : 0;
      for (size_t R = 0; R != Roots.size(); ++R)
        if ((Sub >> R & 1) && Roots[R] != I.Id)
          P.NeverRoots.push_back(Roots[R]);
      // If the target transitively respawns itself, its instances are
      // never provably retired.
      bool SelfRespawn =
          RootBit[I.Id] >= 0 && (Sub >> RootBit[I.Id] & 1);

      const Loop *L1 = LI.innermostLoop(B);
      P.InLoop = L1 != nullptr;

      // Dynamic occurrences of this site (for barrier alignment).
      P.SiteMaxInstances = 1;
      for (const Loop *L = L1; L; L = L->Parent) {
        int LIdx = loopIndex(L);
        if (LIdx < 0 || !LoopMatch[LIdx].Valid) {
          P.SiteMaxInstances = kUnbounded;
          break;
        }
        uint64_t Trips = tripCount(LoopMatch[LIdx], M);
        P.SiteMaxInstances =
            (Trips && P.SiteMaxInstances > kUnbounded / Trips)
                ? kUnbounded
                : P.SiteMaxInstances * Trips;
        if (P.SiteMaxInstances >= kUnbounded) {
          P.SiteMaxInstances = kUnbounded;
          break;
        }
      }

      // -- Join matching (skipped when the target may respawn itself).
      if (!SelfRespawn && !L1) {
        // Straight-line site: find a join whose operand is a
        // single-assignment chain back to this spawn, dominated by it.
        for (BlockId JB = 0; JB != MainF.numBlocks() && !P.HasKill; ++JB) {
          const BasicBlock &JBB = MainF.block(JB);
          for (uint32_t JI = 0; JI != JBB.Insts.size(); ++JI) {
            const Instruction &J = JBB.Insts[JI];
            if (J.Op != Opcode::Join)
              continue;
            Reg R = J.A;
            const Instruction *D = uniqueDef(R);
            while (D && D->Op == Opcode::Move)
              D = uniqueDef(D->A);
            if (!D || D->Op != Opcode::Spawn || D->Ident != I.Ident)
              continue;
            if (!Dom.reachable(B) || !Dom.reachable(JB) ||
                !Dom.dominates(B, JB))
              continue;
            P.HasKill = true;
            P.KillBlock = JB;
            P.KillIndex = JI;
            P.KillAtBlockStart = false;
            break;
          }
        }
      } else if (!SelfRespawn && L1 && !L1->Parent) {
        // Canonical spawn loop storing tids into a global array; match
        // a join loop over the same array with an identical trip.
        int L1Idx = loopIndex(L1);
        const CountedLoop &C1 = LoopMatch[L1Idx];
        bool SpawnOk = false;
        uint32_t TidArray = 0;
        if (C1.Valid && Dom.reachable(B)) {
          bool DomsLatches = true;
          for (BlockId Latch : L1->Latches)
            DomsLatches = DomsLatches && Dom.dominates(B, Latch);
          if (DomsLatches) {
            for (BlockId SB : L1->Blocks) {
              for (const Instruction &St : MainF.block(SB).Insts) {
                if (St.Op != Opcode::Store || St.B != I.Dst)
                  continue;
                const Instruction *Addr = uniqueDef(St.A);
                if (!Addr || Addr->Op != Opcode::AddrGlobal ||
                    Addr->A != C1.IndVar || !L1->contains(DefBlock[St.A]))
                  continue;
                if (!exclusiveStore(Addr->Id, St.Ident))
                  continue;
                bool StDoms = true;
                for (BlockId Latch : L1->Latches)
                  StDoms = StDoms && Dom.dominates(SB, Latch);
                if (!StDoms)
                  continue;
                SpawnOk = true;
                TidArray = Addr->Id;
                break;
              }
              if (SpawnOk)
                break;
            }
          }
        }
        if (SpawnOk) {
          for (size_t L2Idx = 0; L2Idx != LI.numLoops() && !P.HasKill;
               ++L2Idx) {
            const Loop *L2 = LI.loops()[L2Idx].get();
            const CountedLoop &C2 = LoopMatch[L2Idx];
            if (L2 == L1 || L2->Parent || !C2.Valid || !sameTrip(C1, C2))
              continue;
            for (BlockId JB : L2->Blocks) {
              for (const Instruction &J : MainF.block(JB).Insts) {
                if (J.Op != Opcode::Join)
                  continue;
                const Instruction *Ld = uniqueDef(J.A);
                if (!Ld || Ld->Op != Opcode::Load ||
                    !L2->contains(DefBlock[J.A]))
                  continue;
                const Instruction *Addr = uniqueDef(Ld->A);
                if (!Addr || Addr->Op != Opcode::AddrGlobal ||
                    Addr->Id != TidArray || Addr->A != C2.IndVar)
                  continue;
                bool JDoms = true;
                for (BlockId Latch : L2->Latches)
                  JDoms = JDoms && Dom.dominates(JB, Latch);
                if (!JDoms)
                  continue;
                // Every iteration joins tids[i] for the same index
                // range the spawn loop wrote: reaching the exit block
                // retires every spawned instance.
                P.HasKill = true;
                P.KillBlock = C2.Exit;
                P.KillAtBlockStart = true;
                break;
              }
              if (P.HasKill)
                break;
            }
          }
        }
      }
      Gens.push_back(std::move(P));
    }
  }

  GensValid = Gens.size() <= 64 && Roots.size() <= 64;
  // If main itself can be spawned, an access attributed to "root main"
  // may run on a spawned instance, invalidating open-set reasoning.
  bool MainSpawnable = false;
  for (uint32_t T : CG.spawnTargets())
    MainSpawnable = MainSpawnable || T == Main;
  ForkJoinValid = GensValid && !MainSpawnable;
  if (!GensValid)
    return;

  // -- May-be-open / may-have-executed dataflow over main's CFG.
  const uint32_t NB = MainF.numBlocks();
  std::vector<uint64_t> OpenIn(NB, 0), EverIn(NB, 0);
  std::vector<uint64_t> StartKill(NB, 0);
  for (size_t G = 0; G != Gens.size(); ++G)
    if (Gens[G].HasKill && Gens[G].KillAtBlockStart)
      StartKill[Gens[G].KillBlock] |= 1ull << G;

  auto transferBlock = [&](BlockId B, uint64_t Open, uint64_t Ever,
                           bool RecordFacts) -> std::pair<uint64_t, uint64_t> {
    Open &= ~StartKill[B];
    const BasicBlock &BB = MainF.block(B);
    for (uint32_t Idx = 0; Idx != BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      if (RecordFacts) {
        MainBeforeRoots[I.Ident] = rootsFromMasks(Open, Ever);
        for (GenPoint &P : Gens)
          if (P.Inst == I.Ident) {
            P.BeforeOpen = Open;
            P.BeforeEver = Ever;
          }
      }
      for (size_t G = 0; G != Gens.size(); ++G) {
        if (Gens[G].Inst == I.Ident) {
          Open |= 1ull << G;
          Ever |= 1ull << G;
        }
        if (Gens[G].HasKill && !Gens[G].KillAtBlockStart &&
            Gens[G].KillBlock == B && Gens[G].KillIndex == Idx)
          Open &= ~(1ull << G);
      }
    }
    return {Open, Ever};
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B = 0; B != NB; ++B) {
      auto [Open, Ever] = transferBlock(B, OpenIn[B], EverIn[B], false);
      for (BlockId S : MainF.successors(B)) {
        uint64_t NO = OpenIn[S] | Open, NE = EverIn[S] | Ever;
        if (NO != OpenIn[S] || NE != EverIn[S]) {
          OpenIn[S] = NO;
          EverIn[S] = NE;
          Changed = true;
        }
      }
    }
  }
  for (BlockId B = 0; B != NB; ++B)
    transferBlock(B, OpenIn[B], EverIn[B], true);

  // -- Roots possibly live while each callee runs on main's thread.
  const uint32_t N = static_cast<uint32_t>(M.Functions.size());
  OpenCtxRoots.assign(N, 0);
  Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t F = 0; F != N; ++F) {
      if (!CallReachMain[F])
        continue;
      for (const BasicBlock &BB : M.function(F).Blocks)
        for (const Instruction &I : BB.Insts) {
          if (I.Op != Opcode::Call || I.Id >= N)
            continue;
          uint64_t Contrib;
          if (F == Main) {
            auto It = MainBeforeRoots.find(I.Ident);
            Contrib = It != MainBeforeRoots.end() ? It->second : 0;
          } else {
            Contrib = OpenCtxRoots[F] | ClosureRoots[F];
          }
          uint64_t NewV = OpenCtxRoots[I.Id] | Contrib;
          if (NewV != OpenCtxRoots[I.Id]) {
            OpenCtxRoots[I.Id] = NewV;
            Changed = true;
          }
        }
    }
  }

  // -- Worker-vs-worker: can instances of the two roots ever overlap?
  auto rootsOfGen = [&](const GenPoint &P) {
    uint64_t Mask = 0;
    if (P.Target != NoFunc && RootBit[P.Target] >= 0)
      Mask |= 1ull << RootBit[P.Target];
    for (uint32_t R : P.NeverRoots)
      if (RootBit[R] >= 0)
        Mask |= 1ull << RootBit[R];
    return Mask;
  };
  const size_t NR = Roots.size();
  NeverConc.assign(NR, std::vector<char>(NR, 0));
  for (size_t RA = 0; RA != NR; ++RA) {
    for (size_t RB = RA; RB != NR; ++RB) {
      if (Roots[RA] == Main || Roots[RB] == Main)
        continue;
      bool Overlap = false;
      for (size_t G1 = 0; G1 != Gens.size() && !Overlap; ++G1) {
        if (!(rootsOfGen(Gens[G1]) >> RA & 1))
          continue;
        for (size_t G2 = 0; G2 != Gens.size() && !Overlap; ++G2) {
          if (!(rootsOfGen(Gens[G2]) >> RB & 1))
            continue;
          if (G1 == G2) {
            // One point opens both roots, or the same root twice: only
            // a straight-line spawn site whose sole opened root is its
            // own target produces a single non-overlapping instance.
            bool Never = false;
            for (uint32_t NRoot : Gens[G1].NeverRoots)
              Never = Never || NRoot == Roots[RA] || NRoot == Roots[RB];
            Overlap = RA != RB || Never || Gens[G1].InLoop ||
                      Gens[G1].Target != Roots[RA];
            continue;
          }
          // Can an instance from G1 still be live when G2 runs?
          bool Closeable1 = Gens[G1].HasKill && Gens[G1].Target == Roots[RA];
          uint64_t At2 =
              Closeable1 ? Gens[G2].BeforeOpen : Gens[G2].BeforeEver;
          if (At2 >> G1 & 1)
            Overlap = true;
          bool Closeable2 = Gens[G2].HasKill && Gens[G2].Target == Roots[RB];
          uint64_t At1 =
              Closeable2 ? Gens[G1].BeforeOpen : Gens[G1].BeforeEver;
          if (At1 >> G2 & 1)
            Overlap = true;
        }
      }
      NeverConc[RA][RB] = NeverConc[RB][RA] = !Overlap;
    }
  }
}

uint64_t MayHappenInParallel::rootsFromMasks(uint64_t Open,
                                             uint64_t Ever) const {
  uint64_t Mask = 0;
  for (size_t G = 0; G != Gens.size(); ++G) {
    const GenPoint &P = Gens[G];
    if (Open >> G & 1)
      if (P.Target != NoFunc && RootBit[P.Target] >= 0)
        Mask |= 1ull << RootBit[P.Target];
    if (Ever >> G & 1)
      for (uint32_t R : P.NeverRoots)
        if (RootBit[R] >= 0)
          Mask |= 1ull << RootBit[R];
  }
  return Mask;
}

void MayHappenInParallel::buildBarrier() {
  const uint32_t N = static_cast<uint32_t>(M.Functions.size());
  const uint32_t NS = static_cast<uint32_t>(M.Syncs.size());
  bool AnyBarrier = false;
  for (const SyncObject &S : M.Syncs)
    AnyBarrier = AnyBarrier || S.Kind == SyncKind::Barrier;
  if (!AnyBarrier || Roots.size() > 64)
    return;

  // -- Per-function wait-interval dataflow, iterated with call-return
  // summaries to a global fixpoint (all lattices are finite: Lo in
  // [0, HiCap], Hi in [0, HiCap] + unbounded).
  using State = std::vector<Interval>;
  auto bottomState = [&] { return State(NS, bottomInterval()); };
  auto zeroState = [&] { return State(NS, Interval{0, 0}); };
  auto meetState = [](State &A, const State &B) {
    bool Changed = false;
    for (size_t I = 0; I != A.size(); ++I) {
      Interval New = meet(A[I], B[I]);
      if (!(New == A[I])) {
        A[I] = New;
        Changed = true;
      }
    }
    return Changed;
  };

  std::vector<State> ExitWaits(N, bottomState());

  auto transferInst = [&](const Instruction &I, State &S) {
    if (I.Op == Opcode::BarrierWait && I.Id < NS) {
      S[I.Id] = add(S[I.Id], Interval{1, 1});
    } else if (I.Op == Opcode::Call && I.Id < N) {
      const State &CS = ExitWaits[I.Id];
      for (uint32_t B = 0; B != NS; ++B)
        if (!(CS[B] == Interval{0, 0}))
          S[B] = add(S[B], CS[B]);
    }
  };

  // Runs the intra-function fixpoint for F with current summaries;
  // returns the new exit summary. When Record is set, stores the
  // before-instruction states into BeforeInst.
  auto analyzeFunction = [&](uint32_t FId, bool Record) -> State {
    const Function &F = M.function(FId);
    const uint32_t NB = F.numBlocks();
    std::vector<State> In(NB, bottomState());
    In[0] = zeroState();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B = 0; B != NB; ++B) {
        State S = In[B];
        bool Bottom = true;
        for (const Interval &I : S)
          Bottom = Bottom && I.isBottom();
        if (Bottom && B != 0)
          continue;
        for (const Instruction &I : F.block(B).Insts)
          transferInst(I, S);
        for (BlockId Succ : F.successors(B))
          Changed |= meetState(In[Succ], S);
      }
    }
    State Exit = bottomState();
    for (BlockId B = 0; B != NB; ++B) {
      State S = In[B];
      bool Bottom = true;
      for (const Interval &I : S)
        Bottom = Bottom && I.isBottom();
      if (Bottom && B != 0)
        continue;
      const BasicBlock &BB = F.block(B);
      for (const Instruction &I : BB.Insts) {
        if (Record)
          BeforeInst[instKey(FId, I.Ident)] = S;
        transferInst(I, S);
      }
      if (BB.hasTerminator() && BB.terminator().Op == Opcode::Ret)
        meetState(Exit, S);
    }
    return Exit;
  };

  // Global summary fixpoint, callee-first for fast convergence.
  std::vector<uint32_t> Order;
  for (const std::vector<uint32_t> &Scc : CG.bottomUpSccs())
    for (uint32_t F : Scc)
      Order.push_back(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t F : Order) {
      State New = analyzeFunction(F, false);
      for (uint32_t B = 0; B != NS; ++B)
        if (!(New[B] == ExitWaits[F][B])) {
          ExitWaits[F] = New;
          Changed = true;
          break;
        }
    }
  }
  for (uint32_t F = 0; F != N; ++F)
    analyzeFunction(F, true);

  // -- Per-root context intervals over call-only edges.
  const size_t NR = Roots.size();
  Ctx.assign(NR, std::vector<State>(N, bottomState()));
  for (size_t R = 0; R != NR; ++R) {
    Ctx[R][Roots[R]] = zeroState();
    bool CtxChanged = true;
    while (CtxChanged) {
      CtxChanged = false;
      for (uint32_t F = 0; F != N; ++F) {
        bool Bottom = true;
        for (const Interval &I : Ctx[R][F])
          Bottom = Bottom && I.isBottom();
        if (Bottom)
          continue;
        for (const BasicBlock &BB : M.function(F).Blocks)
          for (const Instruction &I : BB.Insts) {
            if (I.Op != Opcode::Call || I.Id >= N)
              continue;
            auto It = BeforeInst.find(instKey(F, I.Ident));
            if (It == BeforeInst.end())
              continue;
            State Contrib(NS);
            bool CBottom = false;
            for (uint32_t B = 0; B != NS; ++B) {
              Contrib[B] = add(Ctx[R][F][B], It->second[B]);
              CBottom = CBottom || Contrib[B].isBottom();
            }
            if (CBottom)
              continue;
            CtxChanged |= meetState(Ctx[R][I.Id], Contrib);
          }
      }
    }
  }

  // -- Participants and alignment.
  std::vector<std::vector<char>> FuncWaits(N, std::vector<char>(NS, 0));
  for (uint32_t F = 0; F != N; ++F)
    for (const BasicBlock &BB : M.function(F).Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::BarrierWait && I.Id < NS)
          FuncWaits[F][I.Id] = 1;

  // Call-only reachability per root.
  std::vector<std::vector<char>> Reach(NR, std::vector<char>(N, 0));
  for (size_t R = 0; R != NR; ++R) {
    std::deque<uint32_t> Work;
    Work.push_back(Roots[R]);
    Reach[R][Roots[R]] = 1;
    while (!Work.empty()) {
      uint32_t F = Work.front();
      Work.pop_front();
      for (const BasicBlock &BB : M.function(F).Blocks)
        for (const Instruction &I : BB.Insts)
          if (I.Op == Opcode::Call && I.Id < N && !Reach[R][I.Id]) {
            Reach[R][I.Id] = 1;
            Work.push_back(I.Id);
          }
    }
  }

  Participants.assign(NS, 0);
  for (uint32_t S = 0; S != NS; ++S)
    for (size_t R = 0; R != NR; ++R)
      for (uint32_t F = 0; F != N; ++F)
        if (Reach[R][F] && FuncWaits[F][S]) {
          Participants[S] |= 1ull << R;
          break;
        }

  // Max instances per root, from gen points (usable only when the gen
  // enumeration fits the mask machinery).
  MaxInst.assign(NR, kUnbounded);
  if (GensValid) {
    for (size_t R = 0; R != NR; ++R) {
      uint64_t Total = Roots[R] == Main ? 1 : 0;
      bool Unbounded = false;
      for (const GenPoint &P : Gens) {
        bool Never = false;
        for (uint32_t NRoot : P.NeverRoots)
          Never = Never || NRoot == Roots[R];
        if (Never)
          Unbounded = true;
        if (P.Target == Roots[R]) {
          if (P.SiteMaxInstances >= kUnbounded)
            Unbounded = true;
          else
            Total += P.SiteMaxInstances;
        }
      }
      MaxInst[R] = Unbounded || Total >= kUnbounded
                       ? kUnbounded
                       : static_cast<uint32_t>(Total);
    }
  }

  AlignedBarrier.assign(NS, 0);
  for (uint32_t S = 0; S != NS; ++S) {
    if (M.Syncs[S].Kind != SyncKind::Barrier || M.Syncs[S].Parties == 0)
      continue;
    uint64_t Sum = 0;
    bool Ok = Participants[S] != 0;
    for (size_t R = 0; R != NR; ++R) {
      if (!(Participants[S] >> R & 1))
        continue;
      if (MaxInst[R] == kUnbounded) {
        Ok = false;
        break;
      }
      Sum += MaxInst[R];
    }
    AlignedBarrier[S] = Ok && Sum <= M.Syncs[S].Parties;
  }
  BarrierValid = true;
}

MhpOrdering MayHappenInParallel::classify(uint32_t RootA, uint32_t FuncA,
                                          InstId InstA, uint32_t RootB,
                                          uint32_t FuncB,
                                          InstId InstB) const {
  if (Mode == MhpMode::Off)
    return MhpOrdering::MayRace;
  if (ForkJoinValid) {
    if (RootA == Main && RootB != Main &&
        mainSideOrdered(FuncA, InstA, RootB))
      return MhpOrdering::OrderedForkJoin;
    if (RootB == Main && RootA != Main &&
        mainSideOrdered(FuncB, InstB, RootA))
      return MhpOrdering::OrderedForkJoin;
    if (RootA != Main && RootB != Main) {
      int IA = rootIdx(RootA), IB = rootIdx(RootB);
      if (IA >= 0 && IB >= 0 && NeverConc[IA][IB])
        return MhpOrdering::OrderedForkJoin;
    }
  }
  if (Mode == MhpMode::Barrier && BarrierValid &&
      barrierOrdered(RootA, FuncA, InstA, RootB, FuncB, InstB))
    return MhpOrdering::OrderedBarrier;
  return MhpOrdering::MayRace;
}

bool MayHappenInParallel::mainSideOrdered(uint32_t Func, InstId Inst,
                                          uint32_t Worker) const {
  int Bit = rootIdx(Worker);
  if (Bit < 0)
    return false;
  uint64_t Live;
  if (Func == Main) {
    auto It = MainBeforeRoots.find(Inst);
    if (It == MainBeforeRoots.end())
      return false;
    Live = It->second;
  } else {
    if (Func >= CallReachMain.size() || !CallReachMain[Func])
      return false;
    Live = OpenCtxRoots[Func] | ClosureRoots[Func];
  }
  return !(Live >> Bit & 1);
}

bool MayHappenInParallel::barrierOrdered(uint32_t RootA, uint32_t FuncA,
                                         InstId InstA, uint32_t RootB,
                                         uint32_t FuncB,
                                         InstId InstB) const {
  int IA = rootIdx(RootA), IB = rootIdx(RootB);
  if (IA < 0 || IB < 0)
    return false;
  for (uint32_t S = 0; S != M.Syncs.size(); ++S) {
    if (!AlignedBarrier[S])
      continue;
    if (!(Participants[S] >> IA & 1) || !(Participants[S] >> IB & 1))
      continue;
    Interval A = intervalAt(IA, FuncA, InstA, S);
    Interval B = intervalAt(IB, FuncB, InstB, S);
    if (A.isBottom() || B.isBottom())
      continue;
    if ((A.Hi != kUnbounded && A.Hi < B.Lo) ||
        (B.Hi != kUnbounded && B.Hi < A.Lo))
      return true;
  }
  return false;
}

MayHappenInParallel::Interval
MayHappenInParallel::intervalAt(int RootIdx, uint32_t Func, InstId Inst,
                                uint32_t SyncId) const {
  if (RootIdx < 0 || static_cast<size_t>(RootIdx) >= Ctx.size() ||
      Func >= Ctx[RootIdx].size())
    return bottomInterval();
  auto It = BeforeInst.find(instKey(Func, Inst));
  if (It == BeforeInst.end())
    return bottomInterval();
  return add(Ctx[RootIdx][Func][SyncId], It->second[SyncId]);
}

bool MayHappenInParallel::barrierAligned(uint32_t SyncId) const {
  return BarrierValid && SyncId < AlignedBarrier.size() &&
         AlignedBarrier[SyncId];
}

uint64_t MayHappenInParallel::maxInstances(uint32_t Root) const {
  int Bit = rootIdx(Root);
  if (!BarrierValid || Bit < 0 ||
      static_cast<size_t>(Bit) >= MaxInst.size())
    return kUnbounded;
  return MaxInst[Bit];
}

std::pair<uint32_t, uint32_t>
MayHappenInParallel::waitInterval(uint32_t Root, uint32_t Func, InstId Inst,
                                  uint32_t SyncId) const {
  if (!BarrierValid || SyncId >= M.Syncs.size())
    return {kUnbounded, 0};
  Interval I = intervalAt(rootIdx(Root), Func, Inst, SyncId);
  return {I.Lo, I.Hi};
}
