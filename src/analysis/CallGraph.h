//===- analysis/CallGraph.h - Call graph and SCC order ----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over a module's functions (Call and Spawn edges), Tarjan
/// SCC condensation, and the bottom-up order RELAY composes function
/// summaries in (paper §3.1). Also identifies thread entry points: main
/// plus every spawn target.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_CALLGRAPH_H
#define CHIMERA_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace analysis {

class CallGraph {
public:
  explicit CallGraph(const ir::Module &M);

  const std::vector<uint32_t> &callees(uint32_t FuncId) const {
    return Callees[FuncId];
  }
  const std::vector<uint32_t> &callers(uint32_t FuncId) const {
    return Callers[FuncId];
  }

  /// Functions directly spawned as threads.
  const std::vector<uint32_t> &spawnTargets() const { return SpawnTargets; }

  /// Thread roots: main plus all spawn targets (deduplicated).
  const std::vector<uint32_t> &threadRoots() const { return ThreadRoots; }

  /// True if \p Target is spawned more than once statically, or from
  /// inside a loop — i.e. two dynamic instances may run concurrently.
  /// (A conservative analysis would assume yes; we track the distinction
  /// so tests can exercise both.)
  bool mayHaveConcurrentInstances(uint32_t FuncId) const {
    return MultiSpawn[FuncId];
  }

  /// SCC id per function; SCCs are numbered in bottom-up (callee-first)
  /// topological order.
  uint32_t sccId(uint32_t FuncId) const { return SccIds[FuncId]; }
  uint32_t numSccs() const { return NumSccs; }

  /// Function ids grouped by SCC, in bottom-up order.
  const std::vector<std::vector<uint32_t>> &bottomUpSccs() const {
    return Sccs;
  }

  /// All functions reachable from \p Root (inclusive).
  std::vector<uint32_t> reachableFrom(uint32_t Root) const;

  uint32_t numFunctions() const {
    return static_cast<uint32_t>(Callees.size());
  }

private:
  void computeSccs();

  std::vector<std::vector<uint32_t>> Callees;
  std::vector<std::vector<uint32_t>> Callers;
  std::vector<uint32_t> SpawnTargets;
  std::vector<uint32_t> ThreadRoots;
  std::vector<bool> MultiSpawn;
  std::vector<uint32_t> SccIds;
  std::vector<std::vector<uint32_t>> Sccs;
  uint32_t NumSccs = 0;
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_CALLGRAPH_H
