//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop detection from back edges (an edge latch->header where
/// the header dominates the latch). Codegen guarantees every loop has a
/// unique preheader; symbolic-bounds instrumentation hoists range
/// computations there (paper §5).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_LOOPINFO_H
#define CHIMERA_ANALYSIS_LOOPINFO_H

#include "ir/Function.h"

#include <memory>
#include <vector>

namespace chimera {
namespace analysis {

struct Loop {
  ir::BlockId Header = ir::NoBlock;
  /// The single in-loop predecessor(s) of the header via back edges.
  std::vector<ir::BlockId> Latches;
  /// Unique predecessor of the header outside the loop; NoBlock if the
  /// loop has no (unique) preheader.
  ir::BlockId Preheader = ir::NoBlock;
  /// All blocks in the loop (header included), sorted.
  std::vector<ir::BlockId> Blocks;
  Loop *Parent = nullptr;
  unsigned Depth = 1;
  bool ContainsCall = false;

  bool contains(ir::BlockId B) const;
  bool contains(const Loop *Other) const;
};

class LoopInfo {
public:
  explicit LoopInfo(const ir::Function &Func);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Innermost loop containing \p Block, or null.
  const Loop *innermostLoop(ir::BlockId Block) const;

  /// Outermost loop containing \p Block, or null.
  const Loop *outermostLoop(ir::BlockId Block) const;

  size_t numLoops() const { return Loops.size(); }

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  /// Innermost loop per block (null if none).
  std::vector<Loop *> BlockLoop;
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_LOOPINFO_H
