//===- analysis/PointsTo.h - Flow-insensitive points-to analysis -*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program, flow- and context-insensitive points-to analysis in the
/// two flavors RELAY combines (paper §3.1/§6.2): Andersen's
/// inclusion-based analysis and Steensgaard's unification-based analysis.
///
/// Abstract objects are (a) global variables — field-insensitive, so a
/// whole array is one object, which is precisely the conservatism that
/// makes RELAY report false races on partitioned arrays like radix's
/// `rank` — and (b) heap allocation sites.
///
/// Pointer variables are (function, register) pairs. MiniC cannot store
/// pointers into memory (arrays hold ints), so pointers flow only through
/// registers and call/spawn argument bindings, which keeps the constraint
/// system small without changing the phenomena the paper studies.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_POINTSTO_H
#define CHIMERA_ANALYSIS_POINTSTO_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace analysis {

/// An abstract memory object.
struct MemObject {
  enum class Kind : uint8_t { Global, HeapSite } Kind = Kind::Global;
  uint32_t GlobalId = 0;  ///< For Kind::Global.
  uint32_t FuncId = 0;    ///< For Kind::HeapSite: allocating function...
  ir::InstId Alloc = 0;   ///< ...and the Alloc instruction.
  std::string name(const ir::Module &M) const;
};

enum class PointsToFlavor : uint8_t { Andersen, Steensgaard };

class PointsTo {
public:
  PointsTo(const ir::Module &M,
           PointsToFlavor Flavor = PointsToFlavor::Andersen);

  /// All abstract objects (index = object id).
  const std::vector<MemObject> &objects() const { return Objects; }

  /// Object ids register (FuncId, R) may point to, sorted.
  std::vector<uint32_t> pointsTo(uint32_t FuncId, ir::Reg R) const;

  /// True when the two pointer registers may reference a common object.
  bool mayAlias(uint32_t FuncA, ir::Reg RegA, uint32_t FuncB,
                ir::Reg RegB) const;

  /// Object-id set of the address operand of a Load/Store instruction.
  /// \p Ident must name a memory access in \p FuncId.
  std::vector<uint32_t> accessedObjects(uint32_t FuncId,
                                        ir::InstId Ident) const;

  uint32_t numObjects() const {
    return static_cast<uint32_t>(Objects.size());
  }

private:
  uint32_t varId(uint32_t FuncId, ir::Reg R) const {
    return FuncBase[FuncId] + R;
  }
  void buildObjects(const ir::Module &M);
  void solveAndersen(const ir::Module &M);
  void solveSteensgaard(const ir::Module &M);

  const ir::Module &M;
  std::vector<MemObject> Objects;
  std::vector<uint32_t> FuncBase; ///< First var id of each function.
  uint32_t NumVars = 0;
  /// Per pointer-variable bitset of object ids.
  std::vector<std::vector<uint64_t>> Pts;
  uint32_t ObjWords = 0;
  /// Heap-site object id per (FuncId, InstId) Alloc, for constraint
  /// generation.
  std::vector<std::pair<uint64_t, uint32_t>> AllocSiteIds;
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_POINTSTO_H
