//===- analysis/Dominators.cpp - Dominator computation ---------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

Dominators::Dominators(const Function &Func) {
  uint32_t N = Func.numBlocks();
  Idom.assign(N, NoBlock);
  RpoIndex.assign(N, ~0u);
  Preds.resize(N);

  // Postorder DFS from the entry.
  std::vector<BlockId> Postorder;
  std::vector<uint8_t> State(N, 0); // 0 = unseen, 1 = open, 2 = done.
  std::function<void(BlockId)> dfs = [&](BlockId B) {
    State[B] = 1;
    for (BlockId S : Func.successors(B)) {
      Preds[S].push_back(B);
      if (State[S] == 0)
        dfs(S);
    }
    State[B] = 2;
    Postorder.push_back(B);
  };
  dfs(0);

  RPO.assign(Postorder.rbegin(), Postorder.rend());
  for (uint32_t I = 0; I != RPO.size(); ++I)
    RpoIndex[RPO[I]] = I;

  // Cooper–Harvey–Kennedy iteration.
  auto intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : RPO) {
      if (B == 0)
        continue;
      BlockId NewIdom = NoBlock;
      for (BlockId P : Preds[B]) {
        if (Idom[P] == NoBlock)
          continue; // Unprocessed or unreachable predecessor.
        NewIdom = NewIdom == NoBlock ? P : intersect(P, NewIdom);
      }
      assert(NewIdom != NoBlock && "reachable block with no processed pred");
      if (Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool Dominators::dominates(BlockId A, BlockId B) const {
  if (!reachable(A) || !reachable(B))
    return false;
  while (B != A && B != 0)
    B = Idom[B];
  return B == A;
}
