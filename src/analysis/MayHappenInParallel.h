//===- analysis/MayHappenInParallel.h - Sound MHP analysis ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sound, whole-program may-happen-in-parallel analysis over the IR.
/// RELAY (race/RelayDetector.h) is deliberately blind to non-mutex
/// synchronization, so fork/join- and barrier-separated accesses surface
/// as false race pairs that Chimera otherwise only recovers from
/// dynamically via profiling. This pass proves two orderings statically:
///
///  - **Fork/join**: main-thread code that runs while no instance of a
///    worker root can be live (strictly before its spawn sites, or
///    strictly after a matched join that provably retires every spawned
///    instance) cannot race with that worker; two worker roots whose
///    spawn lifetimes never overlap cannot race either. Join matching is
///    structural — a straight-line `t = spawn(...); ... join(t)` chain
///    with single-assignment registers, or a canonical counted spawn
///    loop writing a never-otherwise-stored tid array paired with a join
///    loop over the same array and identical trip expression — because
///    the runtime permits double-joins, which make naive spawn-minus-
///    join counting unsound.
///
///  - **Barrier phases**: per-thread-root wait-count intervals. When a
///    barrier is *aligned* — the summed maximum instance count of every
///    participating root is no larger than its party count — each
///    thread's k-th wait belongs to global generation k (fewer arrivals
///    deadlock, which orders vacuously), so accesses whose wait-count
///    intervals are disjoint are phase-ordered.
///
/// Both facts are per thread root: an access record (Func, Inst) from a
/// root's RELAY summary executes on that root's thread, so queries take
/// the root context on each side.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_MAYHAPPENINPARALLEL_H
#define CHIMERA_ANALYSIS_MAYHAPPENINPARALLEL_H

#include "analysis/CallGraph.h"
#include "ir/Module.h"
#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace chimera {
namespace analysis {

class PointsTo;

/// How much ordering the MHP filter is allowed to use. Barrier includes
/// the fork/join facts.
enum class MhpMode : uint8_t { Off, ForkJoin, Barrier };

const char *mhpModeName(MhpMode Mode);

/// Parses "off" | "forkjoin" | "barrier"; unknown spellings are a
/// failure, never a silent default.
support::Expected<MhpMode> parseMhpMode(const std::string &Text);

/// Why (or whether) an access pair is ordered.
enum class MhpOrdering : uint8_t {
  MayRace,         ///< No ordering proven.
  OrderedForkJoin, ///< Separated by spawn/join structure.
  OrderedBarrier,  ///< Separated by an aligned barrier phase.
};

class MayHappenInParallel {
public:
  /// Sentinel for "no finite bound" (intervals, instance counts).
  static constexpr uint32_t kUnbounded = 0xffffffffu;

  MayHappenInParallel(const ir::Module &M, const CallGraph &CG,
                      const PointsTo &PT, MhpMode Mode = MhpMode::Barrier);

  MhpMode mode() const { return Mode; }

  /// Classifies a candidate race between an access at (FuncA, InstA)
  /// executing on a thread rooted at RootA and an access at
  /// (FuncB, InstB) on a thread rooted at RootB. Roots must come from
  /// CallGraph::threadRoots(); the same root on both sides means two
  /// distinct instances. Returns MayRace unless ordering is proven.
  MhpOrdering classify(uint32_t RootA, uint32_t FuncA, ir::InstId InstA,
                       uint32_t RootB, uint32_t FuncB,
                       ir::InstId InstB) const;

  // -- Introspection (tests, diagnostics).

  /// True when barrier \p SyncId satisfies the alignment condition and
  /// may therefore order accesses.
  bool barrierAligned(uint32_t SyncId) const;

  /// Upper bound on concurrent+sequential thread instances rooted at
  /// \p Root over a whole execution; kUnbounded when unknown.
  uint64_t maxInstances(uint32_t Root) const;

  /// Wait-count interval {Lo, Hi} of barrier \p SyncId completed before
  /// \p Inst of \p Func runs on a thread rooted at \p Root. Hi ==
  /// kUnbounded means no finite bound; {kUnbounded, 0} means the
  /// analysis has no fact (unreachable or barrier mode disabled).
  std::pair<uint32_t, uint32_t> waitInterval(uint32_t Root, uint32_t Func,
                                             ir::InstId Inst,
                                             uint32_t SyncId) const;

private:
  /// Saturating wait-count interval; Lo == kUnbounded is bottom
  /// (unreachable), Hi == kUnbounded is "no finite bound".
  struct Interval {
    uint32_t Lo = 0;
    uint32_t Hi = 0;
    bool isBottom() const { return Lo == kUnbounded; }
    bool operator==(const Interval &O) const {
      return Lo == O.Lo && Hi == O.Hi;
    }
  };
  static Interval bottomInterval() { return {kUnbounded, 0}; }
  static Interval meet(Interval A, Interval B);
  static Interval add(Interval A, Interval B);

  /// A point in main's code where worker-thread instances may come into
  /// existence: a spawn site, or a call whose callee closure spawns.
  struct GenPoint {
    ir::InstId Inst = ir::NoInst;
    uint32_t Target = ~0u;           ///< Closeable root; ~0u for call gens.
    std::vector<uint32_t> NeverRoots;///< Opened, never provably closed.
    bool HasKill = false;
    ir::BlockId KillBlock = ir::NoBlock;
    uint32_t KillIndex = 0;          ///< Kill applies after this index...
    bool KillAtBlockStart = false;   ///< ...or at KillBlock entry.
    bool InLoop = false;             ///< Site sits inside a loop.
    uint64_t SiteMaxInstances = 1;   ///< Dynamic occurrences of this site.
    uint64_t BeforeOpen = 0;         ///< Open gen mask just before Inst.
    uint64_t BeforeEver = 0;         ///< Ever gen mask just before Inst.
  };

  void buildCommon(const PointsTo &PT);
  void buildForkJoin(const PointsTo &PT);
  void buildBarrier();
  uint64_t rootsFromMasks(uint64_t Open, uint64_t Ever) const;
  bool mainSideOrdered(uint32_t Func, ir::InstId Inst, uint32_t Worker) const;
  bool barrierOrdered(uint32_t RootA, uint32_t FuncA, ir::InstId InstA,
                      uint32_t RootB, uint32_t FuncB,
                      ir::InstId InstB) const;
  Interval intervalAt(int RootIdx, uint32_t Func, ir::InstId Inst,
                      uint32_t SyncId) const;
  int rootIdx(uint32_t Root) const {
    return Root < RootBit.size() ? RootBit[Root] : -1;
  }
  static uint64_t instKey(uint32_t Func, ir::InstId Inst) {
    return (static_cast<uint64_t>(Func) << 32) | Inst;
  }

  const ir::Module &M;
  const CallGraph &CG;
  MhpMode Mode;
  uint32_t Main = 0;

  // -- Common structure.
  std::vector<uint32_t> Roots;         ///< CG.threadRoots().
  std::vector<int> RootBit;            ///< FuncId -> root index, -1.
  std::vector<uint64_t> ClosureRoots;  ///< Per func: spawn-closure root mask.
  std::vector<char> CallReachMain;     ///< Call-only reachable from main.
  std::vector<char> NeverStoredGlobal; ///< No Store may touch the global.
  /// Stores that may touch each global: (FuncId, InstId) pairs.
  std::vector<std::vector<std::pair<uint32_t, ir::InstId>>> GlobalStores;

  // -- Fork/join facts.
  bool GensValid = false;     ///< Gen-point machinery usable (mask widths).
  bool ForkJoinValid = false; ///< Fork/join pruning usable.
  std::vector<GenPoint> Gens;
  /// Root mask possibly live before each of main's instructions.
  std::unordered_map<ir::InstId, uint64_t> MainBeforeRoots;
  /// Per func != main: roots possibly live while it runs on main's thread.
  std::vector<uint64_t> OpenCtxRoots;
  /// [rootIdx][rootIdx]: instances provably never overlap in time.
  std::vector<std::vector<char>> NeverConc;

  // -- Barrier facts.
  bool BarrierValid = false;
  std::vector<char> AlignedBarrier;     ///< Per sync id.
  std::vector<uint64_t> Participants;   ///< Per sync id: root mask.
  std::vector<uint64_t> MaxInst;        ///< Per root idx; kUnbounded = inf.
  /// (Func, Inst) -> per-sync interval of waits before the instruction,
  /// relative to the enclosing function's entry (callee waits included).
  std::unordered_map<uint64_t, std::vector<Interval>> BeforeInst;
  /// [rootIdx][Func] -> per-sync interval of waits before entering Func
  /// on a thread rooted there.
  std::vector<std::vector<std::vector<Interval>>> Ctx;
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_MAYHAPPENINPARALLEL_H
