//===- analysis/LockOrderGraph.h - Weak-lock order analysis -----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program may-be-held-while-acquiring analysis over the weak-locks
/// of an instrumented module. A deadlock among weak-locks needs a cycle
/// of threads each holding one lock while blocked acquiring the next, so
/// the analysis computes every ordered pair (H, L) such that some thread
/// may hold H at a WeakAcquire of L:
///
///  - intraprocedurally, a forward may-held dataflow over the
///    instrumented IR (the WeakAcquire/WeakRelease instructions the
///    Instrumenter emitted are the only transfer points, exactly as in
///    PlanAuditor's must-held proof — the analysis trusts the emitted
///    code, not the Planner's bookkeeping);
///  - interprocedurally, locks held at a Call site flow into the callee
///    as an entry context, iterated to fixpoint over the call graph
///    (spawn edges deliberately do not propagate: the spawner's holds
///    are not the child thread's holds).
///
/// Edges are pruned with MayHappenInParallel: a cycle is a deadlock
/// candidate only if its acquire sites can be assigned thread roots such
/// that every pair of participating critical sections may overlap in
/// time — in an actual deadlock all participants are simultaneously
/// blocked, so any proven ordering between two sites refutes every cycle
/// containing both. Cycle enumeration is bounded; when a bound is hit
/// the affected SCC is conservatively reported cyclic (the analysis may
/// over-report cycles but never under-reports: an "acyclic" verdict is a
/// proof).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_LOCKORDERGRAPH_H
#define CHIMERA_ANALYSIS_LOCKORDERGRAPH_H

#include "analysis/CallGraph.h"
#include "analysis/MayHappenInParallel.h"
#include "ir/Module.h"
#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <vector>

namespace chimera {
namespace analysis {

/// What the pipeline does with the lock-order analysis: Off skips it
/// entirely, Audit reports deadlock-potential cycles (and certifies
/// acyclic plans), Enforce additionally repairs cyclic plans by
/// coalescing each cyclic lock set into one coarser lock until the
/// re-audit proves acyclicity.
enum class LockOrderMode : uint8_t { Off, Audit, Enforce };

const char *lockOrderModeName(LockOrderMode Mode);

/// Parses "off" | "audit" | "enforce"; unknown spellings are a failure,
/// never a silent default.
support::Expected<LockOrderMode> parseLockOrderMode(const std::string &Text);

/// One may-held-while-acquiring fact: some path through \p Func reaches
/// a WeakAcquire of \p Acquired in \p Block with \p Held still held.
struct LockOrderEdge {
  uint32_t Held = 0;
  uint32_t Acquired = 0;
  uint32_t Func = ~0u;               ///< Function of the acquire site.
  ir::BlockId Block = ir::NoBlock;   ///< Block of the acquire site.
  /// First original-module instruction at or after the acquire (the
  /// terminator in the worst case) — the anchor for MHP queries, which
  /// only know original instruction ids.
  ir::InstId Repr = ir::NoInst;
  uint32_t HeldFunc = ~0u;           ///< Where Held was acquired...
  ir::BlockId HeldBlock = ir::NoBlock; ///< ...on the witnessed path.
  uint64_t Roots = 0;  ///< Thread-root mask (bit = index) that may run Func.
  bool Interprocedural = false; ///< Held entered through a call context.
};

/// A deadlock-potential cycle: edge indices into edges(), one per hop,
/// with the thread-root index the feasibility search assigned to each.
struct LockOrderCycle {
  std::vector<uint32_t> Edges;
  std::vector<uint32_t> RootIdx; ///< Parallel to Edges.
  /// True when the MHP feasibility search proved the assignment (rather
  /// than giving up at a search bound and keeping the cycle
  /// conservatively).
  bool Verified = false;
};

struct LockOrderStats {
  uint64_t Locks = 0;
  uint64_t AcquireSites = 0;
  uint64_t Edges = 0;
  uint64_t InterprocEdges = 0;
  uint64_t Sccs = 0;            ///< Multi-lock or self-edge SCCs examined.
  uint64_t CyclesEnumerated = 0;
  uint64_t CyclesPrunedMhp = 0;
  uint64_t CyclesFeasible = 0;
  bool EnumerationComplete = true; ///< No enumeration/search bound was hit.
};

class LockOrderGraph {
public:
  /// \p Instrumented is the weak-lock-rewritten module the analysis
  /// reads; \p Original is the pre-instrumentation module (same function
  /// ids, original instruction ids persist in the clone) that anchors
  /// MHP queries; \p CG and \p Mhp are the pipeline's analyses over the
  /// original module — the call structure is identical in both.
  LockOrderGraph(const ir::Module &Instrumented, const ir::Module &Original,
                 const CallGraph &CG, const MayHappenInParallel &Mhp);

  /// True when no feasible cycle survives — the certificate claim.
  bool acyclic() const { return Feasible.empty(); }

  const std::vector<LockOrderEdge> &edges() const { return Edges; }
  const std::vector<LockOrderCycle> &feasibleCycles() const {
    return Feasible;
  }
  const LockOrderStats &stats() const { return Stats; }

  /// Lock-id sets to coalesce under Enforce: the union of the locks of
  /// every feasible cycle, grouped by SCC (sets are disjoint, each
  /// sorted ascending).
  std::vector<std::vector<uint32_t>> cyclicLockSets() const;

  /// Human-readable deadlock-potential report: one witness chain per
  /// feasible cycle ("lock A held at F:bb while acquiring lock B at
  /// G:bb ..."), or a one-line acyclicity statement.
  std::string report() const;

private:
  struct Origin {
    uint32_t Func = ~0u;
    ir::BlockId Block = ir::NoBlock;
  };

  void computeRootMasks(const ir::Module &M);
  void runDataflow(const ir::Module &M, const ir::Module &Original);
  void detectCycles();
  bool cycleFeasible(const std::vector<uint32_t> &LockSeq,
                     LockOrderCycle &Out);

  const ir::Module &IM;
  const MayHappenInParallel &Mhp;
  std::vector<uint32_t> Roots;        ///< CG.threadRoots().
  std::vector<uint64_t> FuncRoots;    ///< Per function: root-index mask.
  std::vector<LockOrderEdge> Edges;
  std::vector<LockOrderCycle> Feasible;
  LockOrderStats Stats;
  bool MasksValid = true; ///< Root count fits the 64-bit masks.
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_LOCKORDERGRAPH_H
