//===- analysis/LoopInfo.cpp - Natural loop detection ----------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

bool Loop::contains(BlockId B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

bool Loop::contains(const Loop *Other) const {
  return Other != this && contains(Other->Header);
}

LoopInfo::LoopInfo(const Function &Func) {
  Dominators Dom(Func);
  uint32_t N = Func.numBlocks();
  BlockLoop.assign(N, nullptr);

  // Collect back edges grouped by header.
  std::map<BlockId, std::vector<BlockId>> BackEdges;
  for (BlockId B = 0; B != N; ++B) {
    if (!Dom.reachable(B))
      continue;
    for (BlockId S : Func.successors(B))
      if (Dom.dominates(S, B))
        BackEdges[S].push_back(B);
  }

  // Build each natural loop: header + everything that reaches a latch
  // without passing through the header.
  for (auto &[Header, Latches] : BackEdges) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;

    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<BlockId> Work = Latches;
    for (BlockId Latch : Latches)
      InLoop[Latch] = true;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      if (B == Header)
        continue;
      for (BlockId P : Dom.preds(B))
        if (Dom.reachable(P) && !InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (BlockId B = 0; B != N; ++B)
      if (InLoop[B])
        L->Blocks.push_back(B);

    // Unique out-of-loop predecessor of the header = preheader.
    BlockId Pre = NoBlock;
    bool Unique = true;
    for (BlockId P : Dom.preds(Header)) {
      if (InLoop[P])
        continue;
      if (Pre == NoBlock)
        Pre = P;
      else
        Unique = false;
    }
    L->Preheader = Unique ? Pre : NoBlock;

    for (BlockId B : L->Blocks)
      for (const Instruction &Inst : Func.block(B).Insts)
        if (isCallLike(Inst.Op))
          L->ContainsCall = true;

    Loops.push_back(std::move(L));
  }

  // Establish nesting: parent = smallest strictly-containing loop.
  for (auto &L : Loops) {
    Loop *Best = nullptr;
    for (auto &Candidate : Loops) {
      if (Candidate.get() == L.get() || !Candidate->contains(L.get()))
        continue;
      if (!Best || Best->contains(Candidate.get()))
        Best = Candidate.get();
    }
    L->Parent = Best;
  }
  for (auto &L : Loops) {
    unsigned Depth = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++Depth;
    L->Depth = Depth;
  }

  // Innermost loop per block: the deepest loop containing it.
  for (auto &L : Loops)
    for (BlockId B : L->Blocks)
      if (!BlockLoop[B] || BlockLoop[B]->Depth < L->Depth)
        BlockLoop[B] = L.get();
}

const Loop *LoopInfo::innermostLoop(BlockId Block) const {
  assert(Block < BlockLoop.size() && "block id out of range");
  return BlockLoop[Block];
}

const Loop *LoopInfo::outermostLoop(BlockId Block) const {
  const Loop *L = innermostLoop(Block);
  while (L && L->Parent)
    L = L->Parent;
  return L;
}
