//===- analysis/Escape.h - Thread-escape analysis ---------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determines which abstract objects can be reached by more than one
/// thread. Globals always escape; a heap allocation site escapes when its
/// pointer flows into a spawn argument. The race detector only considers
/// accesses to escaping objects — mirroring the paper's filtering of race
/// warnings on heapified locals that never escape their function (§6.2).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_ANALYSIS_ESCAPE_H
#define CHIMERA_ANALYSIS_ESCAPE_H

#include "analysis/PointsTo.h"

#include <vector>

namespace chimera {
namespace analysis {

class EscapeAnalysis {
public:
  EscapeAnalysis(const ir::Module &M, const PointsTo &PT);

  bool escapes(uint32_t ObjId) const { return Escaping[ObjId]; }

  /// Number of escaping objects (diagnostics).
  uint32_t numEscaping() const;

private:
  std::vector<bool> Escaping;
};

} // namespace analysis
} // namespace chimera

#endif // CHIMERA_ANALYSIS_ESCAPE_H
