//===- analysis/Escape.cpp - Thread-escape analysis ------------------------===//

#include "analysis/Escape.h"

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

EscapeAnalysis::EscapeAnalysis(const Module &M, const PointsTo &PT) {
  Escaping.assign(PT.numObjects(), false);

  // Globals are shared by construction.
  for (uint32_t Obj = 0; Obj != PT.numObjects(); ++Obj)
    if (PT.objects()[Obj].Kind == MemObject::Kind::Global)
      Escaping[Obj] = true;

  // Heap sites escape when their pointer is handed to a spawned thread.
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    for (const BasicBlock &BB : M.function(F).Blocks) {
      for (const Instruction &Inst : BB.Insts) {
        if (Inst.Op != Opcode::Spawn)
          continue;
        for (Reg Arg : Inst.Args)
          for (uint32_t Obj : PT.pointsTo(F, Arg))
            Escaping[Obj] = true;
      }
    }
  }
}

uint32_t EscapeAnalysis::numEscaping() const {
  uint32_t Count = 0;
  for (bool E : Escaping)
    Count += E;
  return Count;
}
