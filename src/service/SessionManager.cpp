//===- service/SessionManager.cpp - Concurrent pipeline sessions -----------===//

#include "service/SessionManager.h"

#include "instrument/LockOrderAuditor.h"
#include "replay/LogCodec.h"

using namespace chimera;
using namespace chimera::service;

SessionManager::SessionManager(Options O) : Opts(O) {
  Pool = std::make_unique<support::ThreadPool>(Opts.Concurrency);
}

SessionManager::~SessionManager() { shutdown(); }

support::Expected<uint64_t>
SessionManager::submit(core::PipelineRequest Request, SessionOptions SO) {
  auto S = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Draining)
      return support::Error::failure(
          "session manager is shutting down; request '" + Request.Tag +
          "' rejected");
    if (InFlight >= Opts.MaxSessions) {
      fleetScope().counter("rejected").inc();
      return support::Error::failure(
          "admission bound reached (" + std::to_string(Opts.MaxSessions) +
          " sessions in flight); request '" + Request.Tag + "' rejected");
    }
    S->Id = NextId++;
    ++InFlight;
    Sessions.emplace(S->Id, S);
  }
  // The shared persistent cache rides along unless the caller wired a
  // specific one into the request already.
  if (Opts.Artifacts && !Request.Config.Artifacts)
    Request.Config.Artifacts = Opts.Artifacts;
  S->Request = std::move(Request);
  S->Opts = std::move(SO);
  S->Admitted = std::chrono::steady_clock::now();

  obs::Scope Fleet = fleetScope();
  Fleet.counter("submitted").inc();
  Fleet.gauge("in_flight").set(static_cast<int64_t>(inFlight()));

  // With Concurrency <= 1 the pool runs this inline: the session is
  // complete when submit returns. Still correct — just serial.
  Pool->submit([this, S] { runSession(S); });
  return S->Id;
}

bool SessionManager::cancel(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || It->second->Completed)
    return false;
  It->second->CancelRequested = true;
  return true;
}

SessionResult SessionManager::wait(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end()) {
    SessionResult R;
    R.Id = Id;
    R.Error = "unknown session id " + std::to_string(Id);
    return R;
  }
  std::shared_ptr<Session> S = It->second;
  Cv.wait(Lock, [&] { return S->Completed; });
  return S->Result;
}

std::vector<SessionResult> SessionManager::drainAll() {
  std::unique_lock<std::mutex> Lock(Mu);
  Cv.wait(Lock, [&] { return InFlight == 0; });
  std::vector<SessionResult> All;
  All.reserve(Sessions.size());
  for (const auto &[Id, S] : Sessions) // std::map: admission (id) order.
    All.push_back(S->Result);
  return All;
}

void SessionManager::shutdown() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Draining = true;
    Cv.wait(Lock, [&] { return InFlight == 0; });
  }
  Pool.reset(); // Joins the (now idle) workers. Idempotent.
}

size_t SessionManager::inFlight() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return InFlight;
}

/// True when the session must stop at this boundary; fills the
/// cancel/deadline fields of \p R.
bool SessionManager::shouldStop(const std::shared_ptr<Session> &S,
                                const char *Stage, SessionResult &R) const {
  if (S->Opts.StageHook)
    S->Opts.StageHook(Stage);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (S->CancelRequested) {
      R.Cancelled = true;
      R.Error = std::string("session cancelled at stage '") + Stage + "'";
      return true;
    }
  }
  if (S->Opts.DeadlineMs) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - S->Admitted)
                       .count();
    if (static_cast<uint64_t>(Elapsed) >= S->Opts.DeadlineMs) {
      R.DeadlineExpired = true;
      R.Error = "session deadline (" + std::to_string(S->Opts.DeadlineMs) +
                " ms) expired at stage '" + Stage + "'";
      return true;
    }
  }
  return false;
}

void SessionManager::complete(const std::shared_ptr<Session> &S,
                              SessionResult R) {
  R.Id = S->Id;
  R.WallUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - S->Admitted)
          .count());

  obs::Scope Fleet = fleetScope();
  Fleet.counter(R.Ok          ? "completed"
                : R.Cancelled ? "cancelled"
                : R.DeadlineExpired
                    ? "deadline_expired"
                    : "failed")
      .inc();
  Fleet.histogram("session_wall_us").record(R.WallUs);
  if (!R.Tag.empty())
    Fleet.sub("session").sub(R.Tag).counter("wall_us").add(R.WallUs);

  {
    std::lock_guard<std::mutex> Lock(Mu);
    S->Result = std::move(R);
    S->Completed = true;
    --InFlight;
    Fleet.gauge("in_flight").set(static_cast<int64_t>(InFlight));
  }
  Cv.notify_all();
}

void SessionManager::runSession(const std::shared_ptr<Session> &S) {
  SessionResult R;
  R.Tag = S->Request.Tag;
  try {
    if (shouldStop(S, "admitted", R))
      return complete(S, std::move(R));

    auto Built = core::ChimeraPipeline::create(std::move(S->Request));
    if (!Built) {
      R.Error = Built.error().message();
      return complete(S, std::move(R));
    }
    std::unique_ptr<core::ChimeraPipeline> P = Built.take();
    if (shouldStop(S, "built", R))
      return complete(S, std::move(R));

    // Forces the analysis chain (RELAY -> profile -> plan -> certify),
    // or one artifact-cache lookup on a warm hit.
    R.PlanFingerprint = instrument::planFingerprint(P->plan());
    if (shouldStop(S, "planned", R))
      return complete(S, std::move(R));

    rt::ExecutionResult Rec = P->record(S->Opts.Seed);
    if (!Rec.Ok) {
      R.Error = "record failed: " + Rec.Error;
      return complete(S, std::move(R));
    }
    R.RecordStateHash = Rec.StateHash;
    if (shouldStop(S, "recorded", R))
      return complete(S, std::move(R));

    rt::ExecutionResult Rep = P->replay(Rec.Log);
    if (!Rep.Ok) {
      R.Error = "replay failed: " + Rep.Error;
      return complete(S, std::move(R));
    }
    R.ReplayStateHash = Rep.StateHash;
    R.Deterministic = Rep.StateHash == Rec.StateHash;
    R.LogBytes = replay::encodeLog(Rec.Log);
    if (shouldStop(S, "replayed", R))
      return complete(S, std::move(R));

    if (!R.Deterministic) {
      R.Error = "replay diverged from record (state hash mismatch)";
      return complete(S, std::move(R));
    }
    R.Ok = true;
    complete(S, std::move(R));
  } catch (const std::exception &E) {
    // Isolation backstop: a throwing session must not take the pool (or
    // its sibling sessions) down with it.
    R.Ok = false;
    R.Error = std::string("session threw: ") + E.what();
    complete(S, std::move(R));
  } catch (...) {
    R.Ok = false;
    R.Error = "session threw a non-standard exception";
    complete(S, std::move(R));
  }
}
