//===- service/ArtifactCache.h - Persistent analysis artifacts --*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, process-shared cache of analysis artifacts: RELAY
/// function summaries and (certified) instrumentation plans, keyed by
/// content hash and stored in the byte-exact `CART1` on-disk format
/// (docs/CACHE_FORMAT.md — same conventions as the segmented log:
/// little-endian scalars, CRC-protected framing, typed errors naming
/// the damaged entry and offset).
///
/// The cache is the service layer's amortization vehicle: a pipeline
/// whose `PipelineConfig::Artifacts` points here skips the planner,
/// the profile runs, and the whole lock-order certification loop on a
/// plan hit, and a `race::SummaryCache` seeded via `importSummaries`
/// skips the lockset dataflow — across *processes*, not just within
/// one. Every stored value is a pure function of its key, every entry
/// is CRC-validated on load and decode-validated before use, and plans
/// additionally re-check their stamped fingerprint, so a hit is
/// byte-identical to recomputation and damage only ever costs a
/// recompute — never a wrong artifact (test-pinned by the corruption
/// fault matrix in tests/service_test.cpp).
///
/// Thread safety: all members are safe to call concurrently; sessions
/// running on the service pool share one instance.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SERVICE_ARTIFACTCACHE_H
#define CHIMERA_SERVICE_ARTIFACTCACHE_H

#include "instrument/Plan.h"
#include "race/Summary.h"
#include "replay/LogFormat.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace chimera {
namespace race {
class SummaryCache;
}
namespace service {

/// What an entry's payload encodes. Values are stable on-disk numbers.
enum class ArtifactKind : uint16_t {
  Summary = 1, ///< race::FunctionSummary (RELAY).
  Plan = 2,    ///< instrument::InstrumentationPlan (with certificate).
};

// -- CART1 format constants (docs/CACHE_FORMAT.md) -------------------------

inline constexpr char CacheMagic[4] = {'C', 'A', 'R', 'T'};
inline constexpr char EntryMagic[4] = {'A', 'R', 'T', 'F'};
inline constexpr uint16_t CacheFormatVersion = 1;
inline constexpr size_t CacheHeaderBytes = 16;
inline constexpr size_t EntryHeaderBytes = 32;
/// Per-entry payload cap, validated before any allocation.
inline constexpr uint64_t MaxArtifactPayloadBytes = 256ull * 1024 * 1024;

// -- Artifact codecs --------------------------------------------------------
//
// Byte-exact, canonical encodings (varints + raw LE64, specified in
// docs/CACHE_FORMAT.md). Encoding is a deterministic function of the
// value and decode(encode(x)) == x, so re-encoding a decoded artifact
// reproduces the stored bytes — the invariant the cold-vs-warm tests
// pin. Decoders read through a bounds-checked cursor and return false
// on any structural problem; callers treat that as a miss.

void encodeSummary(const race::FunctionSummary &S, std::vector<uint8_t> &Out);
bool decodeSummary(replay::ByteCursor &C, race::FunctionSummary &Out);

void encodePlan(const instrument::InstrumentationPlan &P,
                std::vector<uint8_t> &Out);
bool decodePlan(replay::ByteCursor &C, instrument::InstrumentationPlan &Out);

/// A persistent artifact store: an in-memory (kind, key) -> bytes map
/// with a byte-exact serialized form. Typical service lifecycle:
/// `loadFile` at startup (warm start), `lookup`/`insert` from concurrent
/// sessions, `saveFile` at shutdown.
class ArtifactCache {
public:
  ArtifactCache() = default;

  /// Copies the payload bytes for (\p Kind, \p Key) into \p Out.
  /// Returns false (and counts a miss) when absent.
  bool lookup(ArtifactKind Kind, uint64_t Key,
              std::vector<uint8_t> &Out) const;

  /// Stores \p Bytes under (\p Kind, \p Key). First writer wins: an
  /// existing entry is never overwritten (values are pure functions of
  /// the key, so a second writer's bytes are identical anyway).
  void insert(ArtifactKind Kind, uint64_t Key, std::vector<uint8_t> Bytes);

  /// Calls \p Fn for every entry of \p Kind, in ascending key order,
  /// under the cache lock (\p Fn must not reenter the cache).
  void forEach(ArtifactKind Kind,
               const std::function<void(uint64_t,
                                        const std::vector<uint8_t> &)> &Fn)
      const;

  size_t entryCount() const;

  /// The complete cache in CART1 bytes: file header, then entries
  /// sorted by (kind, key) — deterministic for a given content.
  std::vector<uint8_t> serialize() const;

  /// Merges the entries of a CART1 image into this cache (existing keys
  /// win). Returns the number of entries loaded. Damage yields a typed
  /// error naming the entry index and byte offset; every entry before
  /// the damage is retained (longest-valid-prefix, like log recovery).
  /// A failed or partial load never surfaces a damaged artifact — CRC
  /// validation precedes every insertion — so the only cost is
  /// recomputation.
  support::Expected<uint64_t> loadBytes(const std::vector<uint8_t> &Bytes);

  /// loadBytes over a file. A missing file is an empty cache (returns
  /// 0), not an error — cold starts are the common case.
  support::Expected<uint64_t> loadFile(const std::string &Path);

  /// Writes serialize() to \p Path atomically enough for the bench/CLI
  /// (temp file + rename).
  support::Error saveFile(const std::string &Path) const;

  /// Publishes cache counters as gauges under \p Scope ("entries",
  /// "hits", "misses", "inserts", "loaded", "load_dropped").
  void publishTo(const obs::Scope &Scope) const;

private:
  using EntryKey = std::pair<uint16_t, uint64_t>;
  mutable std::mutex Mu;
  std::map<EntryKey, std::vector<uint8_t>> Entries;
  mutable uint64_t Hits = 0;
  mutable uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t Loaded = 0;      ///< Entries accepted by load*.
  uint64_t LoadDropped = 0; ///< Entries skipped by load* (dup/damage).
};

// -- SummaryCache bridge ----------------------------------------------------

/// Persists every RELAY summary in \p From into \p To (kind Summary).
/// Returns the number of entries written (first-writer-wins, so already
/// persisted keys do not count).
uint64_t exportSummaries(const race::SummaryCache &From, ArtifactCache &To);

/// Seeds \p To with every decodable Summary artifact in \p From, so the
/// next RELAY run skips the lockset dataflow for cached functions.
/// Returns the number of summaries imported; undecodable payloads are
/// skipped (they only cost a recompute).
uint64_t importSummaries(const ArtifactCache &From, race::SummaryCache &To);

} // namespace service
} // namespace chimera

#endif // CHIMERA_SERVICE_ARTIFACTCACHE_H
