//===- service/SessionManager.h - Concurrent pipeline sessions --*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-session analysis service: admits many
/// `core::PipelineRequest`s and runs each as a *session* — build the
/// pipeline, plan (through the shared persistent ArtifactCache when one
/// is attached), record, replay, verify determinism — concurrently on
/// one shared worker pool.
///
/// Contract:
///  - **Bounded admission.** At most `Options::MaxSessions` sessions may
///    be in flight (queued or running); `submit` past the bound returns
///    a typed error instead of queueing unboundedly.
///  - **Failure isolation.** A session that fails compile, validation,
///    audit, record, or replay completes with a typed `SessionResult`
///    error; sibling sessions are untouched. A session body that throws
///    is caught and reported the same way — nothing escapes onto the
///    pool.
///  - **Deadlines and cancellation.** Both are honored at stage
///    boundaries (the simulated machine cannot be preempted mid-run):
///    the session completes early with `Cancelled` or `DeadlineExpired`
///    set and a message naming the boundary.
///  - **Graceful drain.** `shutdown()` (and the destructor) stops
///    admissions, lets every in-flight session finish, and only then
///    joins the workers.
///  - **Determinism.** Sessions only share deterministic, content-keyed
///    state (the ArtifactCache and the process-global SummaryCache), so
///    the same request yields bit-identical artifacts at any
///    concurrency — `SessionResult` carries the hashes, the plan
///    fingerprint, and the encoded log so callers can check.
///
/// With `Options::Metrics` attached, fleet-wide counters land under
/// `service.*` and per-session wall times under
/// `service.session.<Tag>.*`.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SERVICE_SESSIONMANAGER_H
#define CHIMERA_SERVICE_SESSIONMANAGER_H

#include "core/Pipeline.h"
#include "service/ArtifactCache.h"
#include "support/Expected.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chimera {
namespace service {

/// Per-session execution knobs (the analysis knobs travel inside the
/// request's PipelineConfig).
struct SessionOptions {
  /// Record seed.
  uint64_t Seed = 42;
  /// Wall-clock budget in milliseconds, measured from submission;
  /// 0 = none. Checked at stage boundaries.
  uint64_t DeadlineMs = 0;
  /// Test hook called on the session's worker at every stage boundary
  /// ("admitted", "built", "planned", "recorded", "replayed") before
  /// the cancel/deadline check — a blocking hook lets tests hold a
  /// session at a boundary deterministically.
  std::function<void(const char *Stage)> StageHook;
};

/// Everything a completed session reports.
struct SessionResult {
  uint64_t Id = 0;
  std::string Tag;
  /// True only for a full record+replay round trip with Deterministic.
  bool Ok = false;
  bool Cancelled = false;
  bool DeadlineExpired = false;
  std::string Error; ///< Set when !Ok.

  uint64_t RecordStateHash = 0;
  uint64_t ReplayStateHash = 0;
  bool Deterministic = false;
  /// instrument::planFingerprint of the session's plan — equal across
  /// sessions of the same request, cached or recomputed.
  uint64_t PlanFingerprint = 0;
  /// replay::encodeLog of the recorded log (deterministic bytes), for
  /// bit-identity comparison against one-shot runs.
  std::vector<uint8_t> LogBytes;
  /// Host wall time from admission to completion, microseconds.
  uint64_t WallUs = 0;
};

class SessionManager {
public:
  struct Options {
    /// Worker threads for the session pool. >= 2 gives genuinely
    /// asynchronous sessions; <= 1 runs each session inline inside
    /// submit() (support::ThreadPool semantics), which is still correct
    /// but serial. 0 = one per hardware thread.
    unsigned Concurrency = 2;
    /// Bound on sessions in flight (queued + running).
    size_t MaxSessions = 64;
    /// Shared persistent artifact cache injected into every request
    /// whose config has none. May be null.
    ArtifactCache *Artifacts = nullptr;
    /// Fleet-wide service.* metrics sink. May be null.
    obs::Registry *Metrics = nullptr;
  };

  explicit SessionManager(Options Opts);
  /// Drains (shutdown()) before joining the pool.
  ~SessionManager();

  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  /// Admits \p Request as a new session. Fails (typed) when the
  /// in-flight bound is reached or the manager is shutting down; a
  /// rejected request runs nothing.
  support::Expected<uint64_t> submit(core::PipelineRequest Request,
                                     SessionOptions SO = SessionOptions());

  /// Requests cancellation of session \p Id. Honored at the session's
  /// next stage boundary. Returns false for unknown or already
  /// completed sessions (completion wins the race).
  bool cancel(uint64_t Id);

  /// Blocks until session \p Id completes and returns its result. An
  /// unknown id yields a failed result saying so.
  SessionResult wait(uint64_t Id);

  /// Blocks until every admitted session completes; results of all
  /// sessions ever admitted, in admission order.
  std::vector<SessionResult> drainAll();

  /// Stops admitting, waits for every in-flight session. Idempotent.
  void shutdown();

  /// Sessions currently queued or running.
  size_t inFlight() const;

private:
  struct Session {
    uint64_t Id = 0;
    core::PipelineRequest Request;
    SessionOptions Opts;
    std::chrono::steady_clock::time_point Admitted;
    bool CancelRequested = false; ///< Under SessionManager::Mu.
    bool Completed = false;       ///< Under SessionManager::Mu.
    SessionResult Result;         ///< Valid once Completed.
  };

  /// The session body; runs on the pool, never throws.
  void runSession(const std::shared_ptr<Session> &S);
  void complete(const std::shared_ptr<Session> &S, SessionResult R);
  bool shouldStop(const std::shared_ptr<Session> &S, const char *Stage,
                  SessionResult &R) const;
  obs::Scope fleetScope() const { return obs::Scope(Opts.Metrics, "service"); }

  Options Opts;
  mutable std::mutex Mu;
  std::condition_variable Cv; ///< Signaled on session completion.
  uint64_t NextId = 1;
  size_t InFlight = 0;
  bool Draining = false;
  std::map<uint64_t, std::shared_ptr<Session>> Sessions;

  /// Last member: destroyed (joined) first, while Sessions is alive.
  std::unique_ptr<support::ThreadPool> Pool;
};

} // namespace service
} // namespace chimera

#endif // CHIMERA_SERVICE_SESSIONMANAGER_H
