//===- service/ArtifactCache.cpp - Persistent analysis artifacts -----------===//

#include "service/ArtifactCache.h"

#include "instrument/LockOrderAuditor.h"
#include "race/SummaryCache.h"
#include "support/Compressor.h"
#include "support/Crc32.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace chimera;
using namespace chimera::service;
using replay::ByteCursor;

//===----------------------------------------------------------------------===//
// Scalar helpers
//===----------------------------------------------------------------------===//

namespace {

void appendZigzag(std::vector<uint8_t> &Out, int64_t V) {
  appendVarint(Out, (static_cast<uint64_t>(V) << 1) ^
                        static_cast<uint64_t>(V >> 63));
}

bool readZigzag(ByteCursor &C, int64_t &Out) {
  uint64_t Z;
  if (!C.readVarint(Z))
    return false;
  Out = static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  return true;
}

void appendString(std::vector<uint8_t> &Out, const std::string &S) {
  appendVarint(Out, S.size());
  Out.insert(Out.end(), S.begin(), S.end());
}

bool readString(ByteCursor &C, std::string &Out) {
  uint64_t Len;
  if (!C.readVarint(Len) || Len > C.remaining())
    return false;
  Out.assign(reinterpret_cast<const char *>(C.Data + C.Pos),
             static_cast<size_t>(Len));
  C.Pos += static_cast<size_t>(Len);
  return true;
}

void appendU32s(std::vector<uint8_t> &Out, const std::vector<uint32_t> &Vs) {
  appendVarint(Out, Vs.size());
  for (uint32_t V : Vs)
    appendVarint(Out, V);
}

bool readU32s(ByteCursor &C, std::vector<uint32_t> &Out) {
  uint64_t N;
  // A varint is at least one byte, so a count the remaining bytes
  // cannot back is structurally invalid — checked before the reserve.
  if (!C.readVarint(N) || N > C.remaining())
    return false;
  Out.clear();
  Out.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    uint32_t V;
    if (!C.readVarint32(V))
      return false;
    Out.push_back(V);
  }
  return true;
}

void appendLockset(std::vector<uint8_t> &Out, const race::Lockset &L) {
  Out.push_back(L.isTop() ? 1 : 0);
  if (!L.isTop())
    appendU32s(Out, L.ids());
}

bool readLockset(ByteCursor &C, race::Lockset &Out) {
  uint8_t Top;
  if (!C.readByte(Top) || Top > 1)
    return false;
  if (Top) {
    Out = race::Lockset::top();
    return true;
  }
  std::vector<uint32_t> Ids;
  if (!readU32s(C, Ids))
    return false;
  Out = race::Lockset(std::move(Ids));
  return true;
}

void appendAffine(std::vector<uint8_t> &Out, const bounds::AffineExpr &E) {
  Out.push_back(E.valid() ? 1 : 0);
  if (!E.valid())
    return;
  appendZigzag(Out, E.constantValue());
  appendVarint(Out, E.coeffs().size());
  for (const auto &[R, Coeff] : E.coeffs()) {
    appendVarint(Out, R);
    appendZigzag(Out, Coeff);
  }
}

bool readAffine(ByteCursor &C, bounds::AffineExpr &Out) {
  uint8_t Valid;
  if (!C.readByte(Valid) || Valid > 1)
    return false;
  if (!Valid) {
    Out = bounds::AffineExpr::invalid();
    return true;
  }
  int64_t Const;
  uint64_t N;
  if (!readZigzag(C, Const) || !C.readVarint(N) || N > C.remaining())
    return false;
  bounds::AffineExpr E = bounds::AffineExpr::constant(Const);
  for (uint64_t I = 0; I != N; ++I) {
    uint32_t R;
    int64_t Coeff;
    if (!C.readVarint32(R) || !readZigzag(C, Coeff))
      return false;
    E = E.add(bounds::AffineExpr::reg(R).mulConst(Coeff));
  }
  Out = E;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Summary codec
//===----------------------------------------------------------------------===//

void service::encodeSummary(const race::FunctionSummary &S,
                            std::vector<uint8_t> &Out) {
  appendLockset(Out, S.NetAcquired);
  appendLockset(Out, S.MayReleased);
  appendVarint(Out, S.Accesses.size());
  for (const race::AccessRecord &A : S.Accesses) {
    appendVarint(Out, A.FuncId);
    appendVarint(Out, A.Ident);
    Out.push_back(A.IsWrite ? 1 : 0);
    appendU32s(Out, A.Objects);
    appendLockset(Out, A.Held);
  }
}

bool service::decodeSummary(ByteCursor &C, race::FunctionSummary &Out) {
  Out = race::FunctionSummary();
  uint64_t N;
  if (!readLockset(C, Out.NetAcquired) || !readLockset(C, Out.MayReleased) ||
      !C.readVarint(N) || N > C.remaining())
    return false;
  Out.Accesses.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    race::AccessRecord A;
    uint8_t IsWrite;
    if (!C.readVarint32(A.FuncId) || !C.readVarint32(A.Ident) ||
        !C.readByte(IsWrite) || IsWrite > 1 || !readU32s(C, A.Objects) ||
        !readLockset(C, A.Held))
      return false;
    A.IsWrite = IsWrite != 0;
    Out.Accesses.push_back(std::move(A));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Plan codec
//===----------------------------------------------------------------------===//

namespace {
/// Bumped whenever the plan payload layout changes, so a cache written
/// by an older build decodes as a miss instead of garbage.
constexpr uint8_t PlanPayloadVersion = 1;
} // namespace

void service::encodePlan(const instrument::InstrumentationPlan &P,
                         std::vector<uint8_t> &Out) {
  Out.push_back(PlanPayloadVersion);
  appendVarint(Out, P.Locks.size());
  for (const ir::WeakLockMeta &L : P.Locks) {
    Out.push_back(static_cast<uint8_t>(L.Granularity));
    Out.push_back(L.HasRange ? 1 : 0);
    appendString(Out, L.Name);
  }
  appendVarint(Out, P.Functions.size());
  for (const auto &[FuncId, FP] : P.Functions) {
    appendVarint(Out, FuncId);
    appendU32s(Out, FP.EntryLocks);
    appendVarint(Out, FP.Loops.size());
    for (const instrument::LoopGuard &G : FP.Loops) {
      appendVarint(Out, G.LockId);
      appendVarint(Out, G.Header);
      appendVarint(Out, G.Preheader);
      appendU32s(Out, G.LoopBlocks);
      Out.push_back(G.HasRange ? 1 : 0);
      appendVarint(Out, G.LoList.size());
      for (const bounds::AffineExpr &E : G.LoList)
        appendAffine(Out, E);
      appendVarint(Out, G.HiList.size());
      for (const bounds::AffineExpr &E : G.HiList)
        appendAffine(Out, E);
    }
    appendVarint(Out, FP.Blocks.size());
    for (const instrument::BlockGuard &G : FP.Blocks) {
      appendVarint(Out, G.LockId);
      appendVarint(Out, G.Block);
    }
    appendVarint(Out, FP.Instrs.size());
    for (const instrument::InstrGuard &G : FP.Instrs) {
      appendVarint(Out, G.LockId);
      appendVarint(Out, G.Ident);
    }
  }
  const instrument::LockOrderCertificate &Cert = P.Certificate;
  Out.push_back(Cert.Present ? 1 : 0);
  Out.push_back(Cert.Acyclic ? 1 : 0);
  replay::appendLe64(Out, Cert.PlanFingerprint);
  appendVarint(Out, Cert.Edges);
  appendVarint(Out, Cert.CyclesFound);
  appendVarint(Out, Cert.CoalescedLocks);
  appendVarint(Out, Cert.RepairRounds);
  appendVarint(Out, P.PairsTotal);
  appendVarint(Out, P.PairsFunctionCovered);
  appendVarint(Out, P.SidesLoopRanged);
  appendVarint(Out, P.SidesLoopUnranged);
  appendVarint(Out, P.SidesBasicBlock);
  appendVarint(Out, P.SidesInstr);
}

bool service::decodePlan(ByteCursor &C, instrument::InstrumentationPlan &Out) {
  Out = instrument::InstrumentationPlan();
  uint8_t Version;
  if (!C.readByte(Version) || Version != PlanPayloadVersion)
    return false;
  uint64_t NLocks;
  if (!C.readVarint(NLocks) || NLocks > C.remaining())
    return false;
  Out.Locks.reserve(static_cast<size_t>(NLocks));
  for (uint64_t I = 0; I != NLocks; ++I) {
    ir::WeakLockMeta L;
    uint8_t Gran, HasRange;
    if (!C.readByte(Gran) ||
        Gran > static_cast<uint8_t>(ir::WeakLockGranularity::Instr) ||
        !C.readByte(HasRange) || HasRange > 1 || !readString(C, L.Name))
      return false;
    L.Granularity = static_cast<ir::WeakLockGranularity>(Gran);
    L.HasRange = HasRange != 0;
    Out.Locks.push_back(std::move(L));
  }
  uint64_t NFuncs;
  if (!C.readVarint(NFuncs) || NFuncs > C.remaining())
    return false;
  uint32_t PrevFunc = 0;
  for (uint64_t F = 0; F != NFuncs; ++F) {
    uint32_t FuncId;
    if (!C.readVarint32(FuncId))
      return false;
    // Canonical form: std::map iteration wrote ids strictly ascending.
    if (F != 0 && FuncId <= PrevFunc)
      return false;
    PrevFunc = FuncId;
    instrument::FunctionPlan FP;
    uint64_t NLoops;
    if (!readU32s(C, FP.EntryLocks) || !C.readVarint(NLoops) ||
        NLoops > C.remaining())
      return false;
    FP.Loops.reserve(static_cast<size_t>(NLoops));
    for (uint64_t I = 0; I != NLoops; ++I) {
      instrument::LoopGuard G;
      uint8_t HasRange;
      uint64_t NLo, NHi;
      if (!C.readVarint32(G.LockId) || !C.readVarint32(G.Header) ||
          !C.readVarint32(G.Preheader) || !readU32s(C, G.LoopBlocks) ||
          !C.readByte(HasRange) || HasRange > 1)
        return false;
      G.HasRange = HasRange != 0;
      if (!C.readVarint(NLo) || NLo > C.remaining())
        return false;
      G.LoList.resize(static_cast<size_t>(NLo));
      for (uint64_t J = 0; J != NLo; ++J)
        if (!readAffine(C, G.LoList[J]))
          return false;
      if (!C.readVarint(NHi) || NHi > C.remaining())
        return false;
      G.HiList.resize(static_cast<size_t>(NHi));
      for (uint64_t J = 0; J != NHi; ++J)
        if (!readAffine(C, G.HiList[J]))
          return false;
      FP.Loops.push_back(std::move(G));
    }
    uint64_t NBlocks;
    if (!C.readVarint(NBlocks) || NBlocks > C.remaining())
      return false;
    FP.Blocks.reserve(static_cast<size_t>(NBlocks));
    for (uint64_t I = 0; I != NBlocks; ++I) {
      instrument::BlockGuard G;
      if (!C.readVarint32(G.LockId) || !C.readVarint32(G.Block))
        return false;
      FP.Blocks.push_back(G);
    }
    uint64_t NInstrs;
    if (!C.readVarint(NInstrs) || NInstrs > C.remaining())
      return false;
    FP.Instrs.reserve(static_cast<size_t>(NInstrs));
    for (uint64_t I = 0; I != NInstrs; ++I) {
      instrument::InstrGuard G;
      if (!C.readVarint32(G.LockId) || !C.readVarint32(G.Ident))
        return false;
      FP.Instrs.push_back(G);
    }
    Out.Functions.emplace(FuncId, std::move(FP));
  }
  uint8_t Present, Acyclic;
  if (!C.readByte(Present) || Present > 1 || !C.readByte(Acyclic) ||
      Acyclic > 1 ||
      !C.readLe64At(Out.Certificate.PlanFingerprint) ||
      !C.readVarint(Out.Certificate.Edges) ||
      !C.readVarint(Out.Certificate.CyclesFound) ||
      !C.readVarint(Out.Certificate.CoalescedLocks) ||
      !C.readVarint(Out.Certificate.RepairRounds) ||
      !C.readVarint(Out.PairsTotal) ||
      !C.readVarint(Out.PairsFunctionCovered) ||
      !C.readVarint(Out.SidesLoopRanged) ||
      !C.readVarint(Out.SidesLoopUnranged) ||
      !C.readVarint(Out.SidesBasicBlock) || !C.readVarint(Out.SidesInstr))
    return false;
  Out.Certificate.Present = Present != 0;
  Out.Certificate.Acyclic = Acyclic != 0;
  // A certified plan binds its certificate to the exact plan content;
  // re-derive the fingerprint so a decoded plan can never carry a
  // certificate for different bytes than it decodes to.
  if (Out.Certificate.Present &&
      instrument::planFingerprint(Out) != Out.Certificate.PlanFingerprint)
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Cache proper
//===----------------------------------------------------------------------===//

bool ArtifactCache::lookup(ArtifactKind Kind, uint64_t Key,
                           std::vector<uint8_t> &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find({static_cast<uint16_t>(Kind), Key});
  if (It == Entries.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  Out = It->second;
  return true;
}

void ArtifactCache::insert(ArtifactKind Kind, uint64_t Key,
                           std::vector<uint8_t> Bytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entries.emplace(EntryKey{static_cast<uint16_t>(Kind), Key},
                      std::move(Bytes))
          .second)
    ++Inserts;
}

void ArtifactCache::forEach(
    ArtifactKind Kind,
    const std::function<void(uint64_t, const std::vector<uint8_t> &)> &Fn)
    const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto It = Entries.lower_bound({static_cast<uint16_t>(Kind), 0});
       It != Entries.end() && It->first.first == static_cast<uint16_t>(Kind);
       ++It)
    Fn(It->first.second, It->second);
}

size_t ArtifactCache::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

std::vector<uint8_t> ArtifactCache::serialize() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<uint8_t> Out;
  Out.insert(Out.end(), CacheMagic, CacheMagic + 4);
  replay::appendLe16(Out, CacheFormatVersion);
  replay::appendLe16(Out, 0); // Flags, reserved.
  replay::appendLe64(Out, 0); // Reserved.
  // std::map order — (kind, key) ascending — makes the image a pure
  // function of the cache contents.
  for (const auto &[Key, Payload] : Entries) {
    size_t Start = Out.size();
    Out.insert(Out.end(), EntryMagic, EntryMagic + 4);
    replay::appendLe16(Out, Key.first);
    replay::appendLe16(Out, 0); // Entry flags, reserved.
    replay::appendLe64(Out, Key.second);
    replay::appendLe32(Out, static_cast<uint32_t>(Payload.size()));
    replay::appendLe32(Out, support::crc32(Payload.data(), Payload.size()));
    replay::appendLe32(Out, 0); // Reserved.
    uint32_t HeaderCrc = support::crc32(Out.data() + Start, Out.size() - Start);
    replay::appendLe32(Out, HeaderCrc);
    Out.insert(Out.end(), Payload.begin(), Payload.end());
  }
  return Out;
}

namespace {
support::Error entryError(uint64_t Index, size_t Offset,
                          const std::string &What) {
  return support::Error::failure("artifact cache entry " +
                                 std::to_string(Index) + " at offset " +
                                 std::to_string(Offset) + ": " + What);
}
} // namespace

support::Expected<uint64_t>
ArtifactCache::loadBytes(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < CacheHeaderBytes)
    return support::Error::failure(
        "artifact cache: file shorter than the 16-byte CART1 header");
  if (std::memcmp(Bytes.data(), CacheMagic, 4) != 0)
    return support::Error::failure(
        "artifact cache: bad magic (not a CART1 file)");
  if (replay::readLe16(Bytes.data() + 4) != CacheFormatVersion)
    return support::Error::failure(
        "artifact cache: unsupported version " +
        std::to_string(replay::readLe16(Bytes.data() + 4)));
  if (replay::readLe16(Bytes.data() + 6) != 0)
    return support::Error::failure(
        "artifact cache: reserved header flags are nonzero");
  if (replay::readLe64(Bytes.data() + 8) != 0)
    return support::Error::failure(
        "artifact cache: reserved header bytes are nonzero");

  uint64_t Accepted = 0, Index = 0;
  size_t Pos = CacheHeaderBytes;
  while (Pos < Bytes.size()) {
    size_t EntryStart = Pos;
    if (Bytes.size() - Pos < EntryHeaderBytes) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart, "truncated entry header");
    }
    const uint8_t *H = Bytes.data() + Pos;
    // Header CRC first, so any header bit-flip is one uniform error.
    uint32_t HeaderCrc = replay::readLe32(H + 28);
    if (support::crc32(H, EntryHeaderBytes - 4) != HeaderCrc) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart, "entry header CRC mismatch");
    }
    if (std::memcmp(H, EntryMagic, 4) != 0) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart, "bad entry magic");
    }
    uint16_t Kind = replay::readLe16(H + 4);
    if (Kind != static_cast<uint16_t>(ArtifactKind::Summary) &&
        Kind != static_cast<uint16_t>(ArtifactKind::Plan)) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart,
                        "unknown artifact kind " + std::to_string(Kind));
    }
    if (replay::readLe16(H + 6) != 0 || replay::readLe32(H + 24) != 0) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart,
                        "reserved entry fields are nonzero");
    }
    uint64_t Key = replay::readLe64(H + 8);
    uint32_t Size = replay::readLe32(H + 16);
    uint32_t PayloadCrc = replay::readLe32(H + 20);
    if (Size > MaxArtifactPayloadBytes) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart,
                        "payload size " + std::to_string(Size) +
                            " exceeds the per-entry cap");
    }
    Pos += EntryHeaderBytes;
    if (Bytes.size() - Pos < Size) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart, "truncated entry payload");
    }
    const uint8_t *Payload = Bytes.data() + Pos;
    if (support::crc32(Payload, Size) != PayloadCrc) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++LoadDropped;
      return entryError(Index, EntryStart, "entry payload CRC mismatch");
    }
    Pos += Size;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Entries
              .emplace(EntryKey{Kind, Key},
                       std::vector<uint8_t>(Payload, Payload + Size))
              .second) {
        ++Accepted;
        ++Loaded;
      } else {
        ++LoadDropped; // Existing key wins; identical bytes anyway.
      }
    }
    ++Index;
  }
  return Accepted;
}

support::Expected<uint64_t> ArtifactCache::loadFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return static_cast<uint64_t>(0); // Cold start: no cache yet.
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  auto Result = loadBytes(Bytes);
  if (!Result)
    return Result.error().context("loading " + Path);
  return Result;
}

support::Error ArtifactCache::saveFile(const std::string &Path) const {
  std::vector<uint8_t> Bytes = serialize();
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return support::Error::failure("cannot open " + Tmp + " for writing");
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return support::Error::failure("short write to " + Tmp);
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return support::Error::failure("cannot rename " + Tmp + " to " + Path);
  return support::Error::success();
}

void ArtifactCache::publishTo(const obs::Scope &Scope) const {
  if (!Scope)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Scope.gauge("entries").set(static_cast<int64_t>(Entries.size()));
  Scope.gauge("hits").set(static_cast<int64_t>(Hits));
  Scope.gauge("misses").set(static_cast<int64_t>(Misses));
  Scope.gauge("inserts").set(static_cast<int64_t>(Inserts));
  Scope.gauge("loaded").set(static_cast<int64_t>(Loaded));
  Scope.gauge("load_dropped").set(static_cast<int64_t>(LoadDropped));
}

//===----------------------------------------------------------------------===//
// SummaryCache bridge
//===----------------------------------------------------------------------===//

// Both bridges snapshot under the source cache's lock and insert into
// the destination only after iteration ends. Inserting from inside
// forEach would nest the two cache mutexes in opposite orders across
// the two bridges — a classic ABBA deadlock if they ever ran
// concurrently (and a ThreadSanitizer lock-order report even when they
// don't).

uint64_t service::exportSummaries(const race::SummaryCache &From,
                                  ArtifactCache &To) {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> Encoded;
  From.forEach([&](uint64_t Key, const race::FunctionSummary &S) {
    std::vector<uint8_t> Bytes;
    encodeSummary(S, Bytes);
    Encoded.emplace_back(Key, std::move(Bytes));
  });
  uint64_t Before = To.entryCount();
  for (auto &[Key, Bytes] : Encoded)
    To.insert(ArtifactKind::Summary, Key, std::move(Bytes));
  return To.entryCount() - Before;
}

uint64_t service::importSummaries(const ArtifactCache &From,
                                  race::SummaryCache &To) {
  std::vector<std::pair<uint64_t, race::FunctionSummary>> Decoded;
  From.forEach(ArtifactKind::Summary,
               [&](uint64_t Key, const std::vector<uint8_t> &Bytes) {
                 ByteCursor C(Bytes);
                 race::FunctionSummary S;
                 if (decodeSummary(C, S) && C.atEnd())
                   Decoded.emplace_back(Key, std::move(S));
               });
  for (const auto &[Key, S] : Decoded)
    To.insert(Key, S);
  return Decoded.size();
}
