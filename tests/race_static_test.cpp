//===- tests/race_static_test.cpp - RELAY static race detector tests -------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "race/Lockset.h"
#include "race/RelayDetector.h"
#include "race/SummaryCache.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::race;

namespace {

RaceReport detect(const std::string &Source) {
    auto M = test::compileOrNull(Source, "t");
  analysis::CallGraph CG(*M);
  analysis::PointsTo PT(*M);
  analysis::EscapeAnalysis Escape(*M, PT);
  RelayDetector Detector(*M, CG, PT, Escape);
  return Detector.detect();
}

bool reportsRaceBetween(const RaceReport &Report, const ir::Module &M,
                        const std::string &FA, const std::string &FB) {
  uint32_t A = M.findFunction(FA)->Index;
  uint32_t B = M.findFunction(FB)->Index;
  for (auto [X, Y] : Report.racyFunctionPairs())
    if ((X == A && Y == B) || (X == B && Y == A))
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lockset algebra
//===----------------------------------------------------------------------===//

TEST(Lockset, BasicOps) {
  Lockset L;
  EXPECT_TRUE(L.empty());
  L.insert(3);
  L.insert(1);
  L.insert(3);
  EXPECT_EQ(L.size(), 2u);
  EXPECT_TRUE(L.contains(1));
  L.erase(1);
  EXPECT_FALSE(L.contains(1));
}

TEST(Lockset, IntersectUniteSubtract) {
  Lockset A({1, 2, 3}), B({2, 3, 4});
  EXPECT_EQ(Lockset::intersect(A, B), Lockset({2, 3}));
  EXPECT_EQ(Lockset::unite(A, B), Lockset({1, 2, 3, 4}));
  EXPECT_EQ(Lockset::subtract(A, B), Lockset({1}));
}

TEST(Lockset, TopBehavesAsIdentityForIntersect) {
  Lockset A({1, 2});
  EXPECT_EQ(Lockset::intersect(Lockset::top(), A), A);
  EXPECT_EQ(Lockset::intersect(A, Lockset::top()), A);
  EXPECT_TRUE(Lockset::unite(A, Lockset::top()).isTop());
}

TEST(Lockset, Disjointness) {
  EXPECT_TRUE(Lockset::disjoint(Lockset({1}), Lockset({2})));
  EXPECT_FALSE(Lockset::disjoint(Lockset({1, 2}), Lockset({2, 3})));
  EXPECT_TRUE(Lockset::disjoint(Lockset(), Lockset()));
  EXPECT_TRUE(Lockset::disjoint(Lockset::top(), Lockset()));
  EXPECT_FALSE(Lockset::disjoint(Lockset::top(), Lockset({1})));
}

//===----------------------------------------------------------------------===//
// Detection on whole programs
//===----------------------------------------------------------------------===//

TEST(Relay, UnlockedSharedCounterIsRacy) {
  auto Report = detect("int c;\nint tids[2];\n"
                       "void w(int n) { int i; for (i = 0; i < n; i++) { "
                       "c = c + 1; } }\n"
                       "int main() { tids[0] = spawn(w, 10); "
                       "tids[1] = spawn(w, 10); join(tids[0]); "
                       "join(tids[1]); return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}

TEST(Relay, MutexProtectedCounterIsClean) {
  auto Report = detect("int c;\nmutex m;\nint tids[2];\n"
                       "void w(int n) { int i; for (i = 0; i < n; i++) { "
                       "lock(m); c = c + 1; unlock(m); } }\n"
                       "int main() { tids[0] = spawn(w, 10); "
                       "tids[1] = spawn(w, 10); join(tids[0]); "
                       "join(tids[1]); return 0; }");
  EXPECT_TRUE(Report.Pairs.empty()) << Report.Pairs.size();
}

TEST(Relay, DifferentLocksStillRace) {
  auto Report = detect("int c;\nmutex m1;\nmutex m2;\n"
                       "void w1() { lock(m1); c = 1; unlock(m1); }\n"
                       "void w2() { lock(m2); c = 2; unlock(m2); }\n"
                       "int main() { int a = spawn(w1); int b = spawn(w2); "
                       "join(a); join(b); return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}

TEST(Relay, ReadOnlySharingIsClean) {
  auto Report = detect("int table[8];\nint out[2];\n"
                       "void w(int id) { out[id] = table[id]; }\n"
                       "int main() { int a = spawn(w, 0); "
                       "int b = spawn(w, 1); join(a); join(b); "
                       "return 0; }");
  // out[id] write-write races (same abstract object); table reads alone
  // must not race. Verify no pair is read/read.
  for (const RacePair &P : Report.Pairs)
    EXPECT_TRUE(P.A.IsWrite || P.B.IsWrite);
}

TEST(Relay, BarrierOrderingIsInvisible) {
  // The classic false positive (paper Fig. 2): phases separated by a
  // barrier do not race dynamically, but RELAY must still report them.
  std::string Src = "int x;\nbarrier b(2);\n"
                    "void interf() { x = 1; }\n"
                    "void bndry() { x = 2; }\n"
                    "void w1() { interf(); barrier_wait(b); }\n"
                    "void w2() { barrier_wait(b); bndry(); }\n"
                    "int main() { int t1 = spawn(w1); int t2 = spawn(w2); "
                    "join(t1); join(t2); return 0; }";
    auto M = test::compileOrNull(Src, "t");
  ASSERT_NE(M, nullptr);
  auto Report = detect(Src);
  EXPECT_TRUE(reportsRaceBetween(Report, *M, "interf", "bndry"));
}

TEST(Relay, ForkJoinOrderingIsInvisible) {
  // Init-before-spawn and read-after-join are HB-ordered dynamically;
  // RELAY reports them anyway (its second false-positive class).
  std::string Src = "int cfg;\nint res;\n"
                    "void init() { cfg = 5; }\n"
                    "void fini() { res = cfg; }\n"
                    "void w() { res = cfg + 1; }\n"
                    "int main() { init(); int t = spawn(w); join(t); "
                    "fini(); return 0; }";
    auto M = test::compileOrNull(Src, "t");
  ASSERT_NE(M, nullptr);
  auto Report = detect(Src);
  EXPECT_TRUE(reportsRaceBetween(Report, *M, "init", "w"));
  EXPECT_TRUE(reportsRaceBetween(Report, *M, "fini", "w"));
}

TEST(Relay, MainOnlyCodeCannotRaceWithItself) {
  auto Report = detect("int g;\n"
                       "void a() { g = 1; }\nvoid b() { g = 2; }\n"
                       "int main() { a(); b(); return g; }");
  EXPECT_TRUE(Report.Pairs.empty());
}

TEST(Relay, SingleSpawnDoesNotSelfRace) {
  auto Report = detect("int g;\nvoid w() { g = g + 1; }\n"
                       "int main() { int t = spawn(w); join(t); "
                       "return 0; }");
  // w races with nothing: main never touches g.
  EXPECT_TRUE(Report.Pairs.empty());
}

TEST(Relay, SpawnInLoopSelfRaces) {
  auto Report = detect("int g;\nint tids[4];\nvoid w() { g = g + 1; }\n"
                       "int main() { int j; for (j = 0; j < 4; j++) { "
                       "tids[j] = spawn(w); } "
                       "for (j = 0; j < 4; j++) { join(tids[j]); } "
                       "return 0; }");
  ASSERT_FALSE(Report.Pairs.empty());
  EXPECT_EQ(Report.Pairs[0].A.FuncId, Report.Pairs[0].B.FuncId);
}

TEST(Relay, PartitionedArrayStillReported) {
  // Workers write disjoint halves; field-insensitive points-to merges
  // them (the imprecision the symbolic-bounds optimization targets).
  auto Report = detect("int a[100];\n"
                       "void w(int* base, int n) { int i; "
                       "for (i = 0; i < n; i++) { base[i] = i; } }\n"
                       "int main() { int t1 = spawn(w, &a[0], 50); "
                       "int t2 = spawn(w, &a[50], 50); join(t1); join(t2); "
                       "return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}

TEST(Relay, NonEscapingHeapFiltered) {
  auto Report = detect("int tids[2];\n"
                       "void w(int n) { int* p = alloc(8); int i; "
                       "for (i = 0; i < n; i++) { p[0] = p[0] + i; } }\n"
                       "int main() { tids[0] = spawn(w, 5); "
                       "tids[1] = spawn(w, 5); join(tids[0]); "
                       "join(tids[1]); return 0; }");
  // Each thread's scratch is its own allocation... but the abstract
  // heap site is shared between instances of w. It does NOT escape via
  // spawn args, so the escape filter drops it (paper §6.2's heapified
  // local filtering).
  EXPECT_TRUE(Report.Pairs.empty());
}

TEST(Relay, EscapingHeapReported) {
  auto Report = detect("int tids[2];\n"
                       "void w(int* p) { p[0] = p[0] + 1; }\n"
                       "int main() { int* shared = alloc(4); "
                       "tids[0] = spawn(w, shared); "
                       "tids[1] = spawn(w, shared); "
                       "join(tids[0]); join(tids[1]); return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}

TEST(Relay, LockedCalleeSummariesCompose) {
  // The lock is taken in the caller; the access is in the callee. The
  // bottom-up summary must register the lock at the lifted access.
  auto Report = detect("int c;\nmutex m;\nint tids[2];\n"
                       "void bump() { c = c + 1; }\n"
                       "void w() { lock(m); bump(); unlock(m); }\n"
                       "int main() { tids[0] = spawn(w); "
                       "tids[1] = spawn(w); join(tids[0]); join(tids[1]); "
                       "return 0; }");
  EXPECT_TRUE(Report.Pairs.empty());
}

TEST(Relay, CalleeUnlockInvalidatesCallerLock) {
  // The callee releases the caller's lock before the access: unsafe, and
  // the summary's MayReleased must catch it.
  auto Report = detect("int c;\nmutex m;\nint tids[2];\n"
                       "void sneaky() { unlock(m); c = c + 1; lock(m); }\n"
                       "void w() { lock(m); sneaky(); unlock(m); }\n"
                       "int main() { tids[0] = spawn(w); "
                       "tids[1] = spawn(w); join(tids[0]); join(tids[1]); "
                       "return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}

TEST(Relay, BranchMergeIntersectsLocksets) {
  // Lock held on only one path to the access: must-analysis intersects,
  // so the access counts as unprotected.
  auto Report = detect("int c;\nmutex m;\nint tids[2];\n"
                       "void w(int f) { if (f) { lock(m); } "
                       "c = c + 1; if (f) { unlock(m); } }\n"
                       "int main() { tids[0] = spawn(w, 0); "
                       "tids[1] = spawn(w, 1); join(tids[0]); "
                       "join(tids[1]); return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}

TEST(Relay, RacyInstructionsAndFunctionPairsDeduplicated) {
  auto Report = detect("int g;\nint tids[3];\n"
                       "void w() { g = g + 1; g = g + 2; }\n"
                       "int main() { int j; for (j = 0; j < 3; j++) { "
                       "tids[j] = spawn(w); } "
                       "for (j = 0; j < 3; j++) { join(tids[j]); } "
                       "return 0; }");
  // Two writes + two reads in w; pairs among them; function pair just 1.
  EXPECT_EQ(Report.racyFunctionPairs().size(), 1u);
  auto Insts = Report.racyInstructions();
  for (size_t I = 1; I < Insts.size(); ++I)
    EXPECT_TRUE(std::tie(Insts[I - 1].FuncId, Insts[I - 1].Ident) <
                std::tie(Insts[I].FuncId, Insts[I].Ident));
}

TEST(SummaryCacheHits, SecondDetectionHitsAndMatchesFirst) {
  // A fresh detector over the same module must find every function
  // summary already cached and still produce the identical report —
  // cached values are a pure function of the key.
  const std::string Source =
      workloads::workloadSource(workloads::WorkloadKind::Pfscan,
                                workloads::evalParams(
                                    workloads::WorkloadKind::Pfscan));
    auto M = test::compileOrNull(Source, "t");
  analysis::CallGraph CG(*M);
  analysis::PointsTo PT(*M);
  analysis::EscapeAnalysis Escape(*M, PT);

  SummaryCache Cache;
  RelayDetector First(*M, CG, PT, Escape, nullptr, &Cache);
  RaceReport A = First.detect();
  obs::Snapshot AfterFirst = test::cacheSnapshot(Cache);
  EXPECT_EQ(AfterFirst.value("cache.hits", -1), 0);
  EXPECT_GT(AfterFirst.value("cache.entries", 0), 0);

  RelayDetector Second(*M, CG, PT, Escape, nullptr, &Cache);
  RaceReport B = Second.detect();
  obs::Snapshot AfterSecond = test::cacheSnapshot(Cache);
  EXPECT_GT(AfterSecond.value("cache.hits", 0), 0);
  EXPECT_EQ(AfterSecond.value("cache.misses", -1),
            AfterFirst.value("cache.misses", -2))
      << "second detection recomputed a summary the first one cached";

  ASSERT_EQ(A.Pairs.size(), B.Pairs.size());
  for (size_t I = 0; I < A.Pairs.size(); ++I) {
    EXPECT_EQ(A.Pairs[I].key(), B.Pairs[I].key());
    EXPECT_EQ(A.Pairs[I].Objects, B.Pairs[I].Objects);
  }
  EXPECT_EQ(A.racyFunctionPairs(), B.racyFunctionPairs());
}

TEST(Relay, CondVarOrderingInvisible) {
  // Producer/consumer ordered by condvar handshake on a DIFFERENT
  // variable: the flag is mutex-protected, but the payload written
  // outside the lock races per RELAY.
  auto Report = detect(
      "int payload;\nint ready;\nmutex m;\ncond cv;\n"
      "void producer() { payload = 9; lock(m); ready = 1; "
      "cond_signal(cv); unlock(m); }\n"
      "void consumer() { lock(m); while (ready == 0) { cond_wait(cv, m); } "
      "unlock(m); output(payload); }\n"
      "int main() { int a = spawn(producer); int b = spawn(consumer); "
      "join(a); join(b); return 0; }");
  EXPECT_FALSE(Report.Pairs.empty());
}
