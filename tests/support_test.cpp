//===- tests/support_test.cpp - support library tests ----------------------===//

#include "support/Compressor.h"
#include "support/Expected.h"
#include "support/Graph.h"
#include "support/Hash.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

using namespace chimera;
using support::ThreadPool;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, SameSeedSameSequence) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3u);
}

TEST(Rng, NearbySeedsAreScrambled) {
  // Sequential seeds must not produce correlated first outputs.
  std::set<uint64_t> Firsts;
  for (uint64_t Seed = 0; Seed != 64; ++Seed)
    Firsts.insert(Rng(Seed).next());
  EXPECT_EQ(Firsts.size(), 64u);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = R.nextInRange(3, 6);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 6u);
    SawLo |= V == 3;
    SawHi |= V == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, SplitIsIndependent) {
  Rng A(99);
  Rng Child = A.split();
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == Child.next();
  EXPECT_LT(Same, 3u);
}

TEST(Rng, ChanceExtremes) {
  Rng R(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 10));
  }
}

TEST(Rng, ZeroSeedIsValid) {
  Rng R(0);
  EXPECT_NE(R.next(), 0u);
}

//===----------------------------------------------------------------------===//
// Hash
//===----------------------------------------------------------------------===//

TEST(Hash, EmptyHasherHasFnvOffset) {
  Hasher H;
  EXPECT_EQ(H.digest(), 0xcbf29ce484222325ull);
}

TEST(Hash, OrderSensitive) {
  Hasher A, B;
  A.addWord(1);
  A.addWord(2);
  B.addWord(2);
  B.addWord(1);
  EXPECT_NE(A.digest(), B.digest());
}

TEST(Hash, WordsAndBytesAgree) {
  Hasher A, B;
  uint64_t W = 0x0102030405060708ull;
  A.addWord(W);
  uint8_t Bytes[8] = {8, 7, 6, 5, 4, 3, 2, 1}; // Little-endian.
  B.addBytes(Bytes, 8);
  EXPECT_EQ(A.digest(), B.digest());
}

TEST(Hash, HashWordsConvenience) {
  std::vector<uint64_t> V = {1, 2, 3};
  Hasher H;
  H.addWords(V);
  EXPECT_EQ(H.digest(), hashWords(V));
}

TEST(Hash, StringSensitivity) {
  Hasher A, B;
  A.addString("chimera");
  B.addString("chimerb");
  EXPECT_NE(A.digest(), B.digest());
}

//===----------------------------------------------------------------------===//
// UndirectedGraph & cliques
//===----------------------------------------------------------------------===//

TEST(Graph, EdgesAreSymmetric) {
  UndirectedGraph G(4);
  G.addEdge(0, 2);
  EXPECT_TRUE(G.hasEdge(0, 2));
  EXPECT_TRUE(G.hasEdge(2, 0));
  EXPECT_FALSE(G.hasEdge(0, 1));
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(Graph, SelfEdgesIgnored) {
  UndirectedGraph G(3);
  G.addEdge(1, 1);
  EXPECT_FALSE(G.hasEdge(1, 1));
  EXPECT_EQ(G.numEdges(), 0u);
}

TEST(Graph, NeighborsSorted) {
  UndirectedGraph G(5);
  G.addEdge(2, 4);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  EXPECT_EQ(G.neighbors(2), (std::vector<unsigned>{0, 3, 4}));
  EXPECT_EQ(G.degree(2), 3u);
}

TEST(Graph, ResizeKeepsEdges) {
  UndirectedGraph G(2);
  G.addEdge(0, 1);
  G.resize(100);
  EXPECT_TRUE(G.hasEdge(0, 1));
  G.addEdge(70, 99);
  EXPECT_TRUE(G.hasEdge(99, 70));
}

TEST(Graph, IsCliqueChecksAllPairs) {
  UndirectedGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  EXPECT_TRUE(G.isClique({0, 1, 2}));
  EXPECT_FALSE(G.isClique({0, 1, 3}));
}

TEST(Cliques, TriangleIsOneClique) {
  UndirectedGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  auto Cliques = greedyMaximalCliques(G);
  ASSERT_EQ(Cliques.size(), 1u);
  EXPECT_EQ(Cliques[0], (std::vector<unsigned>{0, 1, 2}));
}

TEST(Cliques, PaperFigure3Graph) {
  // Figure 3(c): alice(0)-bob(1), alice-carol(2), bob-carol,
  // carol-dave(3). Cliques: {alice,bob,carol} and {carol,dave}.
  UndirectedGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  auto Cliques = greedyMaximalCliques(G);
  ASSERT_EQ(Cliques.size(), 2u);
  std::set<std::vector<unsigned>> Set(Cliques.begin(), Cliques.end());
  EXPECT_TRUE(Set.count({0, 1, 2}));
  EXPECT_TRUE(Set.count({2, 3}));
}

TEST(Cliques, IsolatedNodesNotCovered) {
  UndirectedGraph G(3);
  G.addEdge(0, 1);
  auto Cliques = greedyMaximalCliques(G);
  ASSERT_EQ(Cliques.size(), 1u);
  EXPECT_EQ(Cliques[0], (std::vector<unsigned>{0, 1}));
}

TEST(Cliques, EveryCliqueIsMaximal) {
  // Random-ish graph; verify every returned clique is a clique and is
  // maximal (no node can extend it).
  UndirectedGraph G(12);
  Rng R(123);
  for (int I = 0; I != 30; ++I)
    G.addEdge(static_cast<unsigned>(R.nextBelow(12)),
              static_cast<unsigned>(R.nextBelow(12)));
  for (const auto &Clique : greedyMaximalCliques(G)) {
    EXPECT_TRUE(G.isClique(Clique));
    for (unsigned Cand = 0; Cand != 12; ++Cand) {
      if (std::binary_search(Clique.begin(), Clique.end(), Cand))
        continue;
      bool AdjacentToAll = true;
      for (unsigned Member : Clique)
        AdjacentToAll &= G.hasEdge(Cand, Member);
      EXPECT_FALSE(AdjacentToAll)
          << "clique extendable by node " << Cand;
    }
  }
}

TEST(Cliques, CoversEveryNonIsolatedNode) {
  UndirectedGraph G(8);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  G.addEdge(4, 5);
  G.addEdge(5, 6);
  auto Cliques = greedyMaximalCliques(G);
  std::set<unsigned> Covered;
  for (const auto &Clique : Cliques)
    Covered.insert(Clique.begin(), Clique.end());
  for (unsigned N = 0; N != 8; ++N)
    if (G.degree(N) > 0) {
      EXPECT_TRUE(Covered.count(N)) << "node " << N;
    }
}

//===----------------------------------------------------------------------===//
// Compressor
//===----------------------------------------------------------------------===//

TEST(Varint, RoundTrip) {
  std::vector<uint8_t> Buf;
  std::vector<uint64_t> Values = {0,    1,    127,        128,
                                  300,  1u << 20, ~0ull >> 1, ~0ull};
  for (uint64_t V : Values)
    appendVarint(Buf, V);
  size_t Pos = 0;
  for (uint64_t V : Values)
    EXPECT_EQ(readVarint(Buf, Pos), V);
  EXPECT_EQ(Pos, Buf.size());
}

TEST(Varint, ZigzagRoundTrip) {
  for (int64_t V : std::initializer_list<int64_t>{0, 1, -1, 100, -100,
                                                  INT64_MAX, INT64_MIN})
    EXPECT_EQ(zigzagDecode(zigzagEncode(V)), V);
  // Small magnitudes stay small.
  EXPECT_LT(zigzagEncode(-3), 10u);
}

TEST(Compressor, EmptyInput) {
  std::vector<uint8_t> Empty;
  EXPECT_EQ(lzDecompress(lzCompress(Empty)), Empty);
}

TEST(Compressor, RoundTripRepetitive) {
  std::vector<uint8_t> Data;
  for (int I = 0; I != 5000; ++I)
    Data.push_back(static_cast<uint8_t>(I % 7));
  auto Packed = lzCompress(Data);
  EXPECT_LT(Packed.size(), Data.size() / 4) << "repetitive data compresses";
  EXPECT_EQ(lzDecompress(Packed), Data);
}

TEST(Compressor, RoundTripIncompressible) {
  Rng R(777);
  std::vector<uint8_t> Data;
  for (int I = 0; I != 4096; ++I)
    Data.push_back(static_cast<uint8_t>(R.next()));
  EXPECT_EQ(lzDecompress(lzCompress(Data)), Data);
}

TEST(Compressor, OverlappingMatches) {
  // "aaaa..." forces matches whose source overlaps the output cursor.
  std::vector<uint8_t> Data(1000, 'a');
  auto Packed = lzCompress(Data);
  EXPECT_LT(Packed.size(), 40u);
  EXPECT_EQ(lzDecompress(Packed), Data);
}

class CompressorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CompressorRoundTrip, RandomStructuredData) {
  Rng R(GetParam());
  std::vector<uint8_t> Data;
  size_t Size = 100 + R.nextBelow(8000);
  // Mix of runs, random bytes, and repeated motifs — log-like content.
  while (Data.size() < Size) {
    switch (R.nextBelow(3)) {
    case 0: {
      uint8_t Byte = static_cast<uint8_t>(R.next());
      size_t Run = 1 + R.nextBelow(40);
      Data.insert(Data.end(), Run, Byte);
      break;
    }
    case 1:
      Data.push_back(static_cast<uint8_t>(R.next()));
      break;
    default: {
      const char *Motif = "event:tid=3,op=lock;";
      Data.insert(Data.end(), Motif, Motif + 20);
      break;
    }
    }
  }
  EXPECT_EQ(lzDecompress(lzCompress(Data)), Data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorRoundTrip,
                         ::testing::Range(1, 21));

//===----------------------------------------------------------------------===//
// Expected / Error
//===----------------------------------------------------------------------===//

TEST(Expected, SuccessAndFailureBasics) {
  support::Error Ok = support::Error::success();
  EXPECT_FALSE(Ok);
  support::Error Bad = support::Error::failure("nope");
  EXPECT_TRUE(Bad);
  EXPECT_EQ(Bad.message(), "nope");
  EXPECT_EQ(Bad.context("stage").message(), "stage: nope");
  EXPECT_FALSE(Ok.context("stage"));
}

TEST(Expected, HoldsValue) {
  support::Expected<int> V = 42;
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 42);
}

TEST(Expected, HoldsError) {
  support::Expected<int> V = support::Error::failure("bad input");
  ASSERT_FALSE(V);
  EXPECT_EQ(V.error().message(), "bad input");
}

TEST(Expected, MoveOnlyPayload) {
  support::Expected<std::unique_ptr<int>> V = std::make_unique<int>(7);
  ASSERT_TRUE(V);
  EXPECT_EQ(**V, 7);
  std::unique_ptr<int> Taken = V.take();
  EXPECT_EQ(*Taken, 7);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ZeroTaskShutdown) {
  // Construction + destruction with no work must not hang or leak.
  { ThreadPool Pool(4); }
  { ThreadPool Pool(1); }
  {
    ThreadPool Pool(3);
    Pool.parallelFor(0, [](size_t) { FAIL() << "no indices to run"; });
  }
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool Pool(1);
  EXPECT_TRUE(Pool.isInline());
  EXPECT_EQ(Pool.numWorkers(), 1u);
  std::thread::id Runner;
  Pool.parallelFor(1, [&](size_t) { Runner = std::this_thread::get_id(); });
  EXPECT_EQ(Runner, std::this_thread::get_id());
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 200;
  std::vector<std::atomic<unsigned>> Counts(N);
  Pool.parallelFor(N, [&](size_t I) { ++Counts[I]; });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Counts[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, SlotOrderedResultsMatchSerial) {
  // The determinism contract: parallel fills of index-addressed slots,
  // merged in index order, equal the serial computation byte for byte.
  auto F = [](size_t I) { return I * 2654435761u + 17; };
  std::vector<uint64_t> Serial(64), Parallel(64);
  for (size_t I = 0; I != Serial.size(); ++I)
    Serial[I] = F(I);
  ThreadPool Pool(8);
  Pool.parallelFor(Parallel.size(),
                   [&](size_t I) { Parallel[I] = F(I); });
  EXPECT_EQ(Serial, Parallel);
}

TEST(ThreadPool, ExceptionOfLowestIndexPropagates) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Ran{0};
  try {
    Pool.parallelFor(16, [&](size_t I) {
      ++Ran;
      if (I == 3 || I == 11)
        throw std::runtime_error("boom" + std::to_string(I));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "boom3");
  }
  // A failed index never cancels the others.
  EXPECT_EQ(Ran.load(), 16u);
}

TEST(ThreadPool, InlinePoolPropagatesExceptions) {
  ThreadPool Pool(1);
  EXPECT_THROW(
      Pool.parallelFor(4,
                       [](size_t I) {
                         if (I == 2)
                           throw std::runtime_error("inline");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Inner parallelFor calls run on worker threads; the helping wait
  // loop must keep draining tasks instead of blocking forever.
  ThreadPool Pool(3);
  std::atomic<unsigned> Total{0};
  Pool.parallelFor(4, [&](size_t) {
    Pool.parallelFor(8, [&](size_t) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 32u);
}

TEST(ThreadPool, SubmitRunsDetachedWork) {
  std::atomic<bool> Ran{false};
  {
    ThreadPool Pool(2);
    Pool.submit([&] { Ran = true; });
    // Destructor drains pending work before joining.
  }
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
  ThreadPool Pool; // Default-sized pool must construct and destruct.
  EXPECT_GE(Pool.numWorkers(), 1u);
}
