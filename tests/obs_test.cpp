//===- tests/obs_test.cpp - Observability layer tests ----------------------===//
//
// The metrics registry and trace recorder in isolation; their wiring
// through pipeline, machine, and log codec; and the layer's central
// contract: observability is inert — record/replay logs and hashes are
// bit-identical whether it is off, sampled, or fully on.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Pipeline.h"
#include "replay/LogCodec.h"
#include "support/Compressor.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

using namespace chimera;
using namespace chimera::obs;

//===----------------------------------------------------------------------===//
// Registry and handles
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterAccumulates) {
  Registry R;
  Counter C = R.counter("a.count");
  ASSERT_TRUE(bool(C));
  C.inc();
  C.add(41);
  EXPECT_EQ(R.snapshot().value("a.count", -1), 42);
}

TEST(Metrics, SameNameSameKindSharesCell) {
  Registry R;
  R.counter("shared").add(1);
  R.counter("shared").add(2);
  EXPECT_EQ(R.snapshot().value("shared", -1), 3);
}

TEST(Metrics, SameNameDifferentKindReturnsNullHandle) {
  Registry R;
  ASSERT_TRUE(bool(R.counter("clash")));
  Gauge G = R.gauge("clash");
  EXPECT_FALSE(bool(G));
  G.set(7); // Must be a safe no-op.
  EXPECT_EQ(R.snapshot().value("clash", -1), 0);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry R;
  Gauge G = R.gauge("g");
  G.set(-5);
  G.add(15);
  EXPECT_EQ(R.snapshot().value("g", 0), 10);
}

TEST(Metrics, HistogramTracksCountSumMinMax) {
  Registry R;
  Histogram H = R.histogram("h");
  H.record(1);
  H.record(100);
  H.record(10);
  const MetricValue *V = R.snapshot().find("h");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Count, 3u);
  EXPECT_EQ(V->Value, 111);
  EXPECT_EQ(V->Min, 1u);
  EXPECT_EQ(V->Max, 100u);
}

TEST(Metrics, NullHandlesAreInertAndFalse) {
  Counter C;
  Gauge G;
  Histogram H;
  EXPECT_FALSE(bool(C));
  EXPECT_FALSE(bool(G));
  EXPECT_FALSE(bool(H));
  C.add(1);
  G.set(1);
  H.record(1); // None may crash.
}

TEST(Metrics, ScopePrefixesAndChains) {
  Registry R;
  Scope Root(&R, "runtime");
  Scope Sub = Root.sub("weaklock").sub("wl0");
  Sub.counter("acquires").add(4);
  EXPECT_EQ(R.snapshot().value("runtime.weaklock.wl0.acquires", -1), 4);
}

TEST(Metrics, NullRegistryScopeIsNoOp) {
  Scope S(nullptr, "x");
  EXPECT_FALSE(bool(S));
  S.sub("y").counter("z").add(1); // Must not crash.
  S.gauge("g").set(3);
}

TEST(Metrics, SnapshotIsNameSortedAndDiffs) {
  Registry R;
  R.counter("b").add(10);
  R.counter("a").add(1);
  R.gauge("g").set(5);
  Snapshot S1 = R.snapshot();
  ASSERT_EQ(S1.values().size(), 3u);
  EXPECT_EQ(S1.values()[0].Name, "a");
  EXPECT_EQ(S1.values()[2].Name, "g");

  R.counter("b").add(7);
  R.gauge("g").set(9);
  Snapshot S2 = R.snapshot().diff(S1);
  EXPECT_EQ(S2.value("b", -1), 7);    // Counters subtract.
  EXPECT_EQ(S2.value("g", -1), 9);    // Gauges keep the newest value.
  EXPECT_EQ(S2.value("a", -1), 0);
}

TEST(Metrics, ToJsonIsFlatAndParsesShape) {
  Registry R;
  R.counter("pipeline.relay.wall_us").add(12);
  R.gauge("pipeline.mhp.pairs_after").set(-3);
  std::string Json = R.snapshot().toJson();
  EXPECT_NE(Json.find("\"pipeline.relay.wall_us\": 12"), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"pipeline.mhp.pairs_after\": -3"),
            std::string::npos)
      << Json;
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
}

TEST(Metrics, ToTableListsEveryMetric) {
  Registry R;
  R.counter("x.one").add(1);
  R.counter("x.two").add(2);
  std::string Table = R.snapshot().toTable();
  EXPECT_NE(Table.find("x.one"), std::string::npos);
  EXPECT_NE(Table.find("x.two"), std::string::npos);
}

TEST(Metrics, ConcurrentCounterAddsDontDropUpdates) {
  Registry R;
  Counter C = R.counter("hot");
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I != 10000; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(R.snapshot().value("hot", -1), 80000);
}

TEST(Metrics, SanitizeMetricSegmentReplacesPunctuation) {
  EXPECT_EQ(sanitizeMetricSegment("pair(a,b):1"), "pair_a_b__1");
  EXPECT_EQ(sanitizeMetricSegment("ok_09AZ"), "ok_09AZ");
}

TEST(Metrics, ParseObsModeRoundTrips) {
  for (const char *Name : {"off", "sampled", "full"}) {
    auto Mode = parseObsMode(Name);
    ASSERT_TRUE(Mode.hasValue()) << Name;
    EXPECT_STREQ(obsModeName(*Mode), Name);
  }
  EXPECT_FALSE(bool(parseObsMode("loud")));
}

//===----------------------------------------------------------------------===//
// Trace recorder
//===----------------------------------------------------------------------===//

TEST(Trace, ScopesRecordSpans) {
  TraceRecorder Rec;
  {
    TraceScope A(&Rec, "alpha");
    TraceScope B(&Rec, "beta", "cat2");
  }
  EXPECT_EQ(Rec.spanCount(), 2u);
  std::string Json = Rec.json();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat2\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos) << Json;
}

TEST(Trace, NullRecorderScopesAreNoOps) {
  TraceScope S(nullptr, "ghost");
  S.args("{\"k\": 1}"); // Must not crash.
}

TEST(Trace, SamplingThinsSpansDeterministically) {
  TraceRecorder Rec(/*SampleEvery=*/2);
  for (int I = 0; I != 10; ++I)
    TraceScope S(&Rec, "span");
  EXPECT_EQ(Rec.spanCount(), 5u);
}

TEST(Trace, MacroCompilesAndRecords) {
  TraceRecorder Rec;
  {
    CHIMERA_TRACE_SPAN(&Rec, "macro.span");
    CHIMERA_TRACE_SPAN(static_cast<TraceRecorder *>(nullptr), "ignored");
  }
  EXPECT_EQ(Rec.spanCount(), 1u);
}

TEST(Trace, WriteFileEmitsChromeLoadableJson) {
  TraceRecorder Rec;
  { TraceScope S(&Rec, "disk.span"); }
  std::string Path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_FALSE(bool(Rec.writeFile(Path)));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Contents(1 << 16, '\0');
  Contents.resize(std::fread(Contents.data(), 1, Contents.size(), F));
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_NE(Contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Contents.find("disk.span"), std::string::npos);
}

TEST(Trace, WriteFileToBadPathFails) {
  TraceRecorder Rec;
  support::Error E = Rec.writeFile("/nonexistent-dir/trace.json");
  EXPECT_TRUE(bool(E));
  EXPECT_FALSE(E.message().empty());
}

//===----------------------------------------------------------------------===//
// Pipeline and machine wiring
//===----------------------------------------------------------------------===//

namespace {

const char *RacyLoops =
    "int c;\nint a[32];\nint tids[2];\n"
    "void w(int* base, int n) { int i; for (i = 0; i < n; i++) { "
    "base[i] = i; c = c + 1; } }\n"
    "int main() { tids[0] = spawn(w, &a[0], 16); "
    "tids[1] = spawn(w, &a[16], 16); join(tids[0]); join(tids[1]); "
    "output(c); return 0; }";

core::PipelineConfig obsConfig(ObsMode Mode) {
  core::PipelineConfig Config;
  Config.Name = "obs";
  Config.NumCores = 4;
  Config.ProfileRuns = 4;
  Config.Observability = Mode;
  return Config;
}

std::unique_ptr<core::ChimeraPipeline> obsPipeline(ObsMode Mode) {
  auto P = core::ChimeraPipeline::create(
      {.Eval = RacyLoops, .Config = obsConfig(Mode)});
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

} // namespace

TEST(ObsPipeline, MetricsFailsWhenOff) {
  auto P = obsPipeline(ObsMode::Off);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->metricsRegistry(), nullptr);
  auto Snap = P->metrics();
  ASSERT_FALSE(Snap);
  EXPECT_NE(Snap.error().message().find("Observability"),
            std::string::npos);
}

TEST(ObsPipeline, StageTimersAndAnalysisStatsPublish) {
  auto P = obsPipeline(ObsMode::Full);
  ASSERT_NE(P, nullptr);
  rt::ExecutionResult Rec = P->record(7);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  auto Snap = P->metrics();
  ASSERT_TRUE(Snap.hasValue()) << Snap.error().message();
  // One entry per stage; wall_us counters exist (0 is legal on a fast
  // host, so only presence is asserted).
  for (const char *Stage :
       {"pipeline.parse.wall_us", "pipeline.sema.wall_us",
        "pipeline.codegen.wall_us", "pipeline.analyses.wall_us",
        "pipeline.mhp.wall_us", "pipeline.relay.wall_us",
        "pipeline.profile.wall_us", "pipeline.bounds.wall_us",
        "pipeline.plan.wall_us", "pipeline.instrument.wall_us",
        "pipeline.audit.wall_us"})
    EXPECT_NE(Snap->find(Stage), nullptr) << Stage;
  // MHP precision gauges ride along with the race report.
  EXPECT_GT(Snap->value("pipeline.mhp.pairs_before", 0), 0);
  EXPECT_GE(Snap->value("pipeline.mhp.pairs_before", 0),
            Snap->value("pipeline.mhp.pairs_after", 0));
}

TEST(ObsPipeline, RecordPublishesPerLockAndLogMetrics) {
  auto P = obsPipeline(ObsMode::Full);
  ASSERT_NE(P, nullptr);
  rt::ExecutionResult Rec = P->record(7);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  auto Snap = P->metrics();
  ASSERT_TRUE(Snap.hasValue());

  // Per-lock acquires sum to the machine's own RunStats total.
  uint64_t PerLockSum = 0;
  for (const MetricValue &V : Snap->values())
    if (V.Name.rfind("runtime.record.weaklock.wl", 0) == 0 &&
        V.Name.size() > 9 &&
        V.Name.compare(V.Name.size() - 9, 9, ".acquires") == 0)
      PerLockSum += static_cast<uint64_t>(V.Value);
  EXPECT_EQ(PerLockSum, Rec.Stats.weakAcquiresTotal());
  EXPECT_EQ(static_cast<uint64_t>(Snap->value(
                "runtime.record.weaklock.total.acquires", -1)),
            Rec.Stats.weakAcquiresTotal());

  // Per-type log record counts reconcile with the log itself.
  EXPECT_EQ(static_cast<uint64_t>(
                Snap->value("runtime.record.log.order.total.records", -1)),
            Rec.Log.totalOrderedEvents());
  EXPECT_EQ(static_cast<uint64_t>(
                Snap->value("runtime.record.log.input.records", -1)),
            Rec.Log.totalInputEvents());

  // Byte attribution stays within the encoded log (which additionally
  // carries headers and length prefixes).
  int64_t PayloadBytes =
      Snap->value("runtime.record.log.order.total.bytes", 0) +
      Snap->value("runtime.record.log.input.bytes", 0) +
      Snap->value("runtime.record.log.revocation.bytes", 0);
  EXPECT_GT(PayloadBytes, 0);
  EXPECT_LE(static_cast<size_t>(PayloadBytes),
            replay::encodeLog(Rec.Log).size());

  // Scheduler quantum accounting is self-consistent.
  EXPECT_GT(Snap->value("runtime.record.sched.quanta", 0), 0);
  EXPECT_LE(Snap->value("runtime.record.sched.quantum_cycles_used", 0),
            Snap->value("runtime.record.sched.quantum_cycles_granted", 0));
}

TEST(ObsPipeline, ReplayPublishesProgressMetrics) {
  auto P = obsPipeline(ObsMode::Full);
  ASSERT_NE(P, nullptr);
  rt::ExecutionResult Rec = P->record(5);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  rt::ExecutionResult Rep = P->replay(Rec.Log);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.StateHash, Rec.StateHash);

  auto Snap = P->metrics();
  ASSERT_TRUE(Snap.hasValue());
  // A complete replay consumed every gate and input it planned to.
  EXPECT_GT(Snap->value("runtime.replay.progress.gates_total", -1), 0);
  EXPECT_EQ(Snap->value("runtime.replay.progress.gates_consumed", -1),
            Snap->value("runtime.replay.progress.gates_total", -2));
  EXPECT_EQ(Snap->value("runtime.replay.progress.inputs_consumed", -1),
            Snap->value("runtime.replay.progress.inputs_total", -2));
}

TEST(ObsMachine, MetricsFailsWithoutRegistry) {
  auto M = test::compileOrNull("int main() { return 0; }");
  ASSERT_NE(M, nullptr);
  rt::Machine Machine(*M, {});
  auto Snap = Machine.metrics();
  ASSERT_FALSE(Snap);
  EXPECT_NE(Snap.error().message().find("Metrics"), std::string::npos);
}

TEST(ObsMachine, NativeRunCountsInstructions) {
  auto M = test::compileOrNull(
      "int main() { int i; int s = 0; "
      "for (i = 0; i < 100; i++) { s = s + i; } output(s); return 0; }");
  ASSERT_NE(M, nullptr);
  Registry Reg;
  rt::MachineOptions MO;
  MO.Metrics = &Reg;
  rt::Machine Machine(*M, MO);
  rt::ExecutionResult R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  auto Snap = Machine.metrics();
  ASSERT_TRUE(Snap.hasValue());
  EXPECT_EQ(static_cast<uint64_t>(
                Snap->value("runtime.native.run.instructions", -1)),
            R.Stats.Instructions);
  EXPECT_EQ(Snap->value("runtime.native.run.runs", -1), 1);
}

//===----------------------------------------------------------------------===//
// The inertness contract: obs off/sampled/full produce bit-identical
// executions.
//===----------------------------------------------------------------------===//

TEST(ObsDeterminism, LogsAndHashesIdenticalAcrossModes) {
  TraceRecorder Trace(/*SampleEvery=*/4);
  std::vector<uint8_t> Logs[3];
  uint64_t RecordHash[3], ReplayHash[3];
  const ObsMode Modes[3] = {ObsMode::Off, ObsMode::Sampled, ObsMode::Full};
  for (int I = 0; I != 3; ++I) {
    core::PipelineConfig Config = obsConfig(Modes[I]);
    if (Modes[I] != ObsMode::Off)
      Config.Trace = &Trace; // Tracing on top must also be inert.
    auto P =
        core::ChimeraPipeline::create({.Eval = RacyLoops, .Config = Config});
    ASSERT_TRUE(P.hasValue()) << P.error().message();
    rt::ExecutionResult Rec = (*P)->record(42);
    ASSERT_TRUE(Rec.Ok) << Rec.Error;
    Logs[I] = replay::encodeLog(Rec.Log);
    RecordHash[I] = Rec.StateHash;
    rt::ExecutionResult Rep = (*P)->replay(Rec.Log);
    ASSERT_TRUE(Rep.Ok) << Rep.Error;
    ReplayHash[I] = Rep.StateHash;
  }
  EXPECT_EQ(Logs[0], Logs[1]);
  EXPECT_EQ(Logs[0], Logs[2]);
  EXPECT_EQ(RecordHash[0], RecordHash[1]);
  EXPECT_EQ(RecordHash[0], RecordHash[2]);
  EXPECT_EQ(ReplayHash[0], ReplayHash[1]);
  EXPECT_EQ(ReplayHash[0], ReplayHash[2]);
  EXPECT_EQ(RecordHash[0], ReplayHash[0]);
}

//===----------------------------------------------------------------------===//
// Compressor round-trips (edge sizes)
//===----------------------------------------------------------------------===//

TEST(Compressor, RoundTripsEmptyInput) {
  std::vector<uint8_t> Empty;
  EXPECT_EQ(lzDecompress(lzCompress(Empty)), Empty);
}

TEST(Compressor, RoundTripsOneByte) {
  std::vector<uint8_t> One = {0xa5};
  EXPECT_EQ(lzDecompress(lzCompress(One)), One);
}

TEST(Compressor, RoundTripsPastWindowSize) {
  // > 64 KiB forces matches across the full LZ window; mix repetition
  // (compressible) with a deterministic pseudo-random tail.
  std::vector<uint8_t> Big;
  Big.reserve(80 * 1024);
  for (size_t I = 0; I != 40 * 1024; ++I)
    Big.push_back(static_cast<uint8_t>(I % 251));
  uint64_t X = 0x2545f4914f6cdd1dULL;
  for (size_t I = 0; I != 40 * 1024; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    Big.push_back(static_cast<uint8_t>(X));
  }
  EXPECT_EQ(lzDecompress(lzCompress(Big)), Big);
}

// The legacy flat-format decode() wrapper is gone; truncated-log fault
// matrices for the segmented format live in tests/log_engine_test.cpp.
