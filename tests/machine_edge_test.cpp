//===- tests/machine_edge_test.cpp - Simulator edge cases ------------------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "replay/Recorder.h"
#include "replay/Replayer.h"
#include "runtime/Machine.h"
#include "runtime/Memory.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::rt;

namespace {

std::unique_ptr<ir::Module> compile(const std::string &Source) {
    auto M = test::compileOrNull(Source, "t");
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Memory subsystem
//===----------------------------------------------------------------------===//

TEST(Memory, HeapExhaustionFaultsCleanly) {
  auto M = compile("int main() { int i; for (i = 0; i < 100000; i++) { "
                   "int* p = alloc(65536); p[0] = i; } return 0; }");
  MachineOptions MO;
  Machine Mx(*M, MO);
  auto R = Mx.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("heap exhausted"), std::string::npos);
}

TEST(Memory, UnitApi) {
  auto M = compile("int g = 5;\nint a[3];\nint main() { return 0; }");
  Memory Mem;
  Mem.init(*M, /*HeapCapacityWords=*/16);
  uint64_t GlobalBase = ir::Module::GlobalBase;
  EXPECT_TRUE(Mem.valid(GlobalBase));
  EXPECT_EQ(Mem.load(GlobalBase), 5u);
  EXPECT_TRUE(Mem.valid(GlobalBase + 3));
  EXPECT_FALSE(Mem.valid(GlobalBase + 4));
  EXPECT_FALSE(Mem.valid(0));

  uint64_t P = Mem.allocate(8);
  EXPECT_EQ(P, ir::Module::HeapBase);
  EXPECT_TRUE(Mem.valid(P + 7));
  EXPECT_FALSE(Mem.valid(P + 8));
  Mem.store(P + 3, 99);
  EXPECT_EQ(Mem.load(P + 3), 99u);

  uint64_t Q = Mem.allocate(8);
  EXPECT_EQ(Q, P + 8);
  EXPECT_EQ(Mem.allocate(8), 0u) << "capacity 16 exhausted";
  // Zero-word allocations still return distinct storage.
  Memory Mem2;
  Mem2.init(*M, 4);
  uint64_t A = Mem2.allocate(0), B = Mem2.allocate(0);
  EXPECT_NE(A, 0u);
  EXPECT_NE(A, B);
}

// Wild addresses must be a deterministic Step::Fault in every build
// type (the interpreter classifies through Memory::access, never an
// assert that vanishes under NDEBUG), and the fault must be identical
// across runs and dispatch-batch sizes.
TEST(Memory, InvalidLoadFaultsDeterministically) {
  auto M = compile("int main() { int* p = alloc(2); output(p[5]); "
                   "return 0; }");
  for (unsigned Batch : {1u, 64u}) {
    MachineOptions MO;
    MO.DispatchBatch = Batch;
    auto R = Machine(*M, MO).run();
    EXPECT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("invalid load address in main"),
              std::string::npos)
        << R.Error;
  }
}

TEST(Memory, InvalidStoreFaultsDeterministically) {
  auto M = compile("int main() { int* p = alloc(2); p[9] = 7; "
                   "return 0; }");
  for (unsigned Batch : {1u, 64u}) {
    MachineOptions MO;
    MO.DispatchBatch = Batch;
    auto R = Machine(*M, MO).run();
    EXPECT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("invalid store address in main"),
              std::string::npos)
        << R.Error;
  }
}

TEST(Memory, BelowSegmentAddressFaults) {
  // A negative index wraps the address below the heap base, where no
  // segment lives; the classification must still fault, not alias into
  // the global segment.
  auto M = compile("int main() { int* p = alloc(1); p[0 - 1] = 3; "
                   "return 0; }");
  MachineOptions MO;
  auto R = Machine(*M, MO).run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid store address"), std::string::npos)
      << R.Error;
}

TEST(Memory, StateHashCoversHeap) {
  auto M = compile("int main() { int* p = alloc(4); p[2] = input() & 255; "
                   "return 0; }");
  MachineOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  auto RA = Machine(*M, A).run();
  auto RB = Machine(*M, B).run();
  ASSERT_TRUE(RA.Ok && RB.Ok);
  EXPECT_NE(RA.StateHash, RB.StateHash) << "heap contents must hash";
}

//===----------------------------------------------------------------------===//
// Budget and stats
//===----------------------------------------------------------------------===//

TEST(MachineEdge, InstructionBudgetCatchesRunaway) {
  auto M = compile("int main() { while (1) { yield(); } return 0; }");
  MachineOptions MO;
  MO.MaxInstructions = 10000;
  Machine Mx(*M, MO);
  auto R = Mx.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(MachineEdge, NativeModeNeverLogs) {
  auto M = compile("mutex m;\nint main() { lock(m); output(input()); "
                   "unlock(m); return 0; }");
  MachineOptions MO;
  Machine Mx(*M, MO);
  auto R = Mx.run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Stats.LogEvents, 0u);
  EXPECT_EQ(R.Log.totalOrderedEvents(), 0u);
}

TEST(MachineEdge, RecordCountsEveryOrderedEvent) {
  auto M = compile("mutex m;\nint tids[2];\n"
                   "void w() { lock(m); unlock(m); }\n"
                   "int main() { tids[0] = spawn(w); tids[1] = spawn(w); "
                   "join(tids[0]); join(tids[1]); output(1); return 0; }");
  auto R = replay::recordExecution(*M, 5);
  ASSERT_TRUE(R.Ok);
  // 4 mutex ops + 2 spawns + 2 joins + 1 output.
  EXPECT_EQ(R.Log.totalOrderedEvents(), 9u);
  EXPECT_EQ(R.Log.NumThreads, 3u);
}

TEST(MachineEdge, CpuBusyNeverExceedsCoresTimesMakespan) {
  auto M = compile("int s[4];\nint tids[4];\n"
                   "void w(int id) { int i; for (i = 0; i < 5000; i++) { "
                   "s[id] = s[id] + i; } }\n"
                   "int main() { int j; for (j = 0; j < 4; j++) { "
                   "tids[j] = spawn(w, j); } "
                   "for (j = 0; j < 4; j++) { join(tids[j]); } "
                   "return 0; }");
  MachineOptions MO;
  MO.NumCores = 4;
  Machine Mx(*M, MO);
  auto R = Mx.run();
  ASSERT_TRUE(R.Ok);
  EXPECT_LE(R.Stats.CpuBusyCycles, R.Stats.MakespanCycles * 4);
  EXPECT_GT(R.Stats.CpuBusyCycles, R.Stats.MakespanCycles)
      << "four busy workers must overlap";
}

//===----------------------------------------------------------------------===//
// Scheduling fairness and starvation
//===----------------------------------------------------------------------===//

TEST(MachineEdge, MoreThreadsThanCoresAllProgress) {
  auto M = compile("int done[12];\nint tids[12];\n"
                   "void w(int id) { int i; for (i = 0; i < 3000; i++) { "
                   "done[id] = done[id] + 1; } }\n"
                   "int main() { int j; for (j = 0; j < 12; j++) { "
                   "tids[j] = spawn(w, j); } "
                   "for (j = 0; j < 12; j++) { join(tids[j]); } "
                   "int k; int ok = 1; for (k = 0; k < 12; k++) { "
                   "if (done[k] != 3000) { ok = 0; } } "
                   "output(ok); return 0; }");
  MachineOptions MO;
  MO.NumCores = 2;
  MO.Seed = 77;
  Machine Mx(*M, MO);
  auto R = Mx.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{1}));
}

TEST(MachineEdge, SingleCoreStillCorrect) {
  auto M = compile("mutex m;\nint c;\nint tids[3];\n"
                   "void w() { lock(m); c = c + 1; unlock(m); }\n"
                   "int main() { int j; for (j = 0; j < 3; j++) { "
                   "tids[j] = spawn(w); } "
                   "for (j = 0; j < 3; j++) { join(tids[j]); } "
                   "output(c); return 0; }");
  MachineOptions MO;
  MO.NumCores = 1;
  Machine Mx(*M, MO);
  auto R = Mx.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{3}));
}

//===----------------------------------------------------------------------===//
// Replay gating edge cases
//===----------------------------------------------------------------------===//

TEST(MachineEdge, EmptyLogReplaysEmptyishProgram) {
  auto M = compile("int main() { int x = 2 + 3; return x; }");
  auto Rec = replay::recordExecution(*M, 1);
  ASSERT_TRUE(Rec.Ok);
  auto Rep = replay::replayExecution(*M, Rec.Log);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.StateHash, Rec.StateHash);
}

TEST(MachineEdge, ReplayConsumesAllGates) {
  auto M = compile("mutex m;\nint c;\nint tids[2];\n"
                   "void w(int n) { int i; for (i = 0; i < n; i++) { "
                   "lock(m); c = c + 1; unlock(m); } }\n"
                   "int main() { tids[0] = spawn(w, 40); "
                   "tids[1] = spawn(w, 40); join(tids[0]); join(tids[1]); "
                   "output(c); return 0; }");
  auto Rec = replay::recordExecution(*M, 6);
  ASSERT_TRUE(Rec.Ok);
  auto Rep = replay::replayExecution(*M, Rec.Log);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  // Same op counts in both directions (nothing dropped or duplicated).
  EXPECT_EQ(Rep.Stats.SyncOps, Rec.Stats.SyncOps);
  EXPECT_EQ(Rep.Stats.Instructions, Rec.Stats.Instructions);
}

TEST(MachineEdge, ReplayAgnosticToQuantumSettings) {
  auto M = compile("int c;\nint tids[2];\n"
                   "void w(int n) { int i; for (i = 0; i < n; i++) { "
                   "c = c + 1; } }\n"
                   "int main() { tids[0] = spawn(w, 200); "
                   "tids[1] = spawn(w, 200); join(tids[0]); "
                   "join(tids[1]); output(c); return 0; }");
  MachineOptions RecOpts;
  RecOpts.Mode = ExecMode::Record;
  RecOpts.Seed = 9;
  auto Rec = Machine(*M, RecOpts).run();
  ASSERT_TRUE(Rec.Ok);

  // Racy program w/o instrumentation: replay CAN diverge, but since the
  // races never interleaved in this recording... we only assert that a
  // sync-clean program replays under odd quanta. Build one:
  auto M2 = compile("mutex m;\nint c;\nint tids[2];\n"
                    "void w(int n) { int i; for (i = 0; i < n; i++) { "
                    "lock(m); c = c + 1; unlock(m); } }\n"
                    "int main() { tids[0] = spawn(w, 50); "
                    "tids[1] = spawn(w, 50); join(tids[0]); "
                    "join(tids[1]); output(c); return 0; }");
  MachineOptions R2;
  R2.Mode = ExecMode::Record;
  R2.Seed = 9;
  auto Rec2 = Machine(*M2, R2).run();
  ASSERT_TRUE(Rec2.Ok);
  for (uint64_t Quantum : {500ull, 2000ull, 50000ull}) {
    MachineOptions Rep;
    Rep.Mode = ExecMode::Replay;
    Rep.ReplayLog = &Rec2.Log;
    Rep.QuantumMin = Quantum;
    Rep.QuantumMax = Quantum;
    auto R = Machine(*M2, Rep).run();
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.StateHash, Rec2.StateHash) << "quantum " << Quantum;
  }
}

TEST(MachineEdge, OutputOrderIsGatedInReplay) {
  auto M = compile("int tids[2];\n"
                   "void w(int id) { int i; for (i = 0; i < 5; i++) { "
                   "output(id * 100 + i); } }\n"
                   "int main() { tids[0] = spawn(w, 1); "
                   "tids[1] = spawn(w, 2); join(tids[0]); join(tids[1]); "
                   "return 0; }");
  auto Rec = replay::recordExecution(*M, 123);
  ASSERT_TRUE(Rec.Ok);
  auto Rep = replay::replayExecution(*M, Rec.Log);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.Output, Rec.Output) << "interleaved output order pinned";
}
