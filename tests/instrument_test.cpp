//===- tests/instrument_test.cpp - Planner and instrumenter tests ----------===//

#include "codegen/CodeGen.h"
#include "core/Pipeline.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <map>

#include <set>

using namespace chimera;
using namespace chimera::instrument;

namespace {

std::unique_ptr<core::ChimeraPipeline> pipelineFor(
    const std::string &Source,
    PlannerOptions Opts = PlannerOptions::full()) {
  core::PipelineConfig Config;
  Config.Name = "t";
  Config.NumCores = 4;
  Config.ProfileRuns = 6;
  Config.Planner = Opts;
  auto P = core::ChimeraPipeline::create({.Eval = Source, .Config = Config});
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

/// Statically walks every path-insensitive block of an instrumented
/// function and checks the weak-lock discipline: balanced acquire and
/// release counts per lock, and no weak-lock held across a call-like
/// instruction except function entry locks released around calls.
void expectBalancedLocks(const ir::Module &M) {
  for (const auto &F : M.Functions) {
    std::map<int64_t, int64_t> Net;
    for (const auto &BB : F->Blocks) {
      for (const auto &Inst : BB.Insts) {
        if (Inst.Op == ir::Opcode::WeakAcquire)
          ++Net[Inst.Imm];
        else if (Inst.Op == ir::Opcode::WeakRelease)
          --Net[Inst.Imm];
      }
    }
    // Static acquire/release counts needn't match exactly (loops release
    // at every exit edge), but a function with acquires must contain
    // releases for the same lock somewhere.
    for (auto [Lock, Count] : Net) {
      bool HasAcquire = false, HasRelease = false;
      for (const auto &BB : F->Blocks)
        for (const auto &Inst : BB.Insts) {
          if (Inst.Imm != Lock)
            continue;
          HasAcquire |= Inst.Op == ir::Opcode::WeakAcquire;
          HasRelease |= Inst.Op == ir::Opcode::WeakRelease;
        }
      if (HasAcquire) {
        EXPECT_TRUE(HasRelease)
            << F->Name << " acquires wl" << Lock << " but never releases";
      }
    }
  }
}

const char *RacyCounterSrc =
    "int c;\nint tids[2];\n"
    "void w(int n) { int i; for (i = 0; i < n; i++) { c = c + 1; } }\n"
    "int main() { tids[0] = spawn(w, 3000); tids[1] = spawn(w, 3000); "
    "join(tids[0]); join(tids[1]); output(c); return 0; }";

const char *PartitionedSrc =
    "int a[64];\nint tids[2];\n"
    "void w(int* base, int n) { int i; for (i = 0; i < n; i++) { "
    "base[i] = i; } }\n"
    "int main() { tids[0] = spawn(w, &a[0], 32); "
    "tids[1] = spawn(w, &a[32], 32); join(tids[0]); join(tids[1]); "
    "int s = 0; int j; for (j = 0; j < 64; j++) { s += a[j]; } "
    "output(s); return 0; }";

} // namespace

TEST(Planner, NaiveUsesInstructionLocksOnly) {
  auto P = pipelineFor(RacyCounterSrc, PlannerOptions::naive());
  const InstrumentationPlan &Plan = P->plan();
  EXPECT_GT(Plan.SidesInstr + Plan.SidesBasicBlock, 0u);
  EXPECT_EQ(Plan.SidesLoopRanged, 0u);
  EXPECT_EQ(Plan.SidesLoopUnranged, 0u);
  for (const auto &[F, FP] : Plan.Functions) {
    EXPECT_TRUE(FP.EntryLocks.empty());
    EXPECT_TRUE(FP.Loops.empty());
  }
}

TEST(Planner, PartitionedArrayGetsRangedLoopLocks) {
  auto P = pipelineFor(PartitionedSrc);
  const InstrumentationPlan &Plan = P->plan();
  EXPECT_GT(Plan.SidesLoopRanged, 0u);
}

TEST(Planner, DegenerateCellAvoidsLoopLock) {
  // The racy scalar in a loop must not produce a loop-level lock (it
  // would serialize the loop; paper §7.3 pfscan case).
  auto P = pipelineFor(RacyCounterSrc);
  const InstrumentationPlan &Plan = P->plan();
  EXPECT_EQ(Plan.SidesLoopRanged, 0u);
  EXPECT_EQ(Plan.SidesLoopUnranged, 0u);
  EXPECT_GT(Plan.SidesBasicBlock + Plan.SidesInstr, 0u);
}

TEST(Planner, NonConcurrentPhasesGetFunctionLocks) {
  const char *Src =
      "int x[8];\nint y[8];\nbarrier b(2);\nint tids[2];\n"
      "void pa() { int i; for (i = 0; i < 8; i++) { x[i] = i; } }\n"
      "void pb() { int i; for (i = 0; i < 8; i++) { y[i] = x[i]; } }\n"
      "void w(int id) { if (id == 0) { pa(); } barrier_wait(b); "
      "if (id == 1) { pb(); } }\n"
      "int main() { tids[0] = spawn(w, 0); tids[1] = spawn(w, 1); "
      "join(tids[0]); join(tids[1]); output(y[3]); return 0; }";
  auto P = pipelineFor(Src);
  const InstrumentationPlan &Plan = P->plan();
  EXPECT_GT(Plan.PairsFunctionCovered, 0u);
  bool AnyEntry = false;
  for (const auto &[F, FP] : Plan.Functions)
    AnyEntry |= !FP.EntryLocks.empty();
  EXPECT_TRUE(AnyEntry);
}

TEST(Planner, SelfConcurrentFunctionsNotFunctionLocked) {
  auto P = pipelineFor(RacyCounterSrc, PlannerOptions::full());
  const InstrumentationPlan &Plan = P->plan();
  // w runs concurrently with itself; its pairs must not be covered.
  EXPECT_EQ(Plan.PairsFunctionCovered, 0u);
}

TEST(Planner, PairLockSharedBetweenSides) {
  // Each uncovered pair creates exactly one lock used by both sides.
  auto P = pipelineFor(PartitionedSrc, PlannerOptions::loopOnly());
  const InstrumentationPlan &Plan = P->plan();
  EXPECT_EQ(Plan.Locks.size(),
            Plan.PairsTotal - Plan.PairsFunctionCovered);
}

TEST(Instrumenter, OutputVerifies) {
  for (const char *Src : {RacyCounterSrc, PartitionedSrc}) {
    auto P = pipelineFor(Src);
    const ir::Module &I = P->instrumentedModule();
    EXPECT_TRUE(ir::verifyModule(I).empty());
    EXPECT_FALSE(I.WeakLocks.empty());
    expectBalancedLocks(I);
  }
}

TEST(Instrumenter, OriginalModuleUntouched) {
  auto P = pipelineFor(RacyCounterSrc);
  uint64_t Before = P->originalModule().totalInstructions();
  (void)P->instrumentedModule();
  EXPECT_EQ(P->originalModule().totalInstructions(), Before);
  EXPECT_TRUE(P->originalModule().WeakLocks.empty());
}

TEST(Instrumenter, WeakOpsCarrySiteGranularity) {
  auto P = pipelineFor(PartitionedSrc);
  const ir::Module &I = P->instrumentedModule();
  bool SawLoopSite = false;
  for (const auto &F : I.Functions)
    for (const auto &BB : F->Blocks)
      for (const auto &Inst : BB.Insts)
        if (Inst.Op == ir::Opcode::WeakAcquire) {
          EXPECT_LE(Inst.Id2, 3u);
          SawLoopSite |=
              Inst.Id2 ==
              static_cast<uint32_t>(ir::WeakLockGranularity::Loop);
        }
  EXPECT_TRUE(SawLoopSite);
}

TEST(Instrumenter, RangedAcquiresHaveBothBounds) {
  auto P = pipelineFor(PartitionedSrc);
  const ir::Module &I = P->instrumentedModule();
  for (const auto &F : I.Functions)
    for (const auto &BB : F->Blocks)
      for (const auto &Inst : BB.Insts)
        if (Inst.Op == ir::Opcode::WeakAcquire) {
          EXPECT_EQ(Inst.A == ir::NoReg, Inst.B == ir::NoReg);
        }
}

TEST(Instrumenter, FunctionLocksReleasedAroundCalls) {
  const char *Src =
      "int x[8];\nint y[8];\nbarrier b(2);\nint tids[2];\n"
      "void leaf() { yield(); }\n"
      "void pa() { int i; for (i = 0; i < 8; i++) { x[i] = i; } leaf(); }\n"
      "void pb() { int i; for (i = 0; i < 8; i++) { y[i] = x[i]; } }\n"
      "void w(int id) { if (id == 0) { pa(); } barrier_wait(b); "
      "if (id == 1) { pb(); } }\n"
      "int main() { tids[0] = spawn(w, 0); tids[1] = spawn(w, 1); "
      "join(tids[0]); join(tids[1]); return 0; }";
  auto P = pipelineFor(Src);
  const ir::Module &I = P->instrumentedModule();
  const ir::Function *Pa = I.findFunction("pa");
  ASSERT_NE(Pa, nullptr);

  // If pa acquired entry locks, the Call to leaf must be bracketed by
  // release/acquire of those locks.
  std::set<int64_t> Entry;
  for (const auto &Inst : Pa->block(0).Insts) {
    if (Inst.Op != ir::Opcode::WeakAcquire)
      break;
    Entry.insert(Inst.Imm);
  }
  if (Entry.empty())
    GTEST_SKIP() << "profiling found pa/pb concurrent on this host";

  for (const auto &BB : Pa->Blocks) {
    for (size_t I2 = 0; I2 != BB.Insts.size(); ++I2) {
      if (BB.Insts[I2].Op != ir::Opcode::Call)
        continue;
      ASSERT_GT(I2, 0u);
      EXPECT_EQ(BB.Insts[I2 - 1].Op, ir::Opcode::WeakRelease);
      ASSERT_LT(I2 + 1, BB.Insts.size());
      EXPECT_EQ(BB.Insts[I2 + 1].Op, ir::Opcode::WeakAcquire);
    }
  }
}

TEST(Instrumenter, InstrumentedProgramStillComputesCorrectly) {
  // The partitioned-sum program has a deterministic result; record mode
  // must compute the same value the native original does.
  auto P = pipelineFor(PartitionedSrc);
  auto Native = P->runOriginalNative(5);
  ASSERT_TRUE(Native.Ok) << Native.Error;
  auto Rec = P->record(5);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  EXPECT_EQ(Native.Output, Rec.Output);
}

TEST(Instrumenter, ConfigurationsChangeCostMonotonically) {
  // Weak-op count under full optimization never exceeds the naive count.
  auto P = pipelineFor(PartitionedSrc, PlannerOptions::naive());
  auto Naive = P->record(7);
  ASSERT_TRUE(Naive.Ok) << Naive.Error;
  P->setPlannerOptions(PlannerOptions::full());
  auto Full = P->record(7);
  ASSERT_TRUE(Full.Ok) << Full.Error;
  EXPECT_LE(Full.Stats.weakAcquiresTotal(),
            Naive.Stats.weakAcquiresTotal());
}
