//===- tests/sema_test.cpp - MiniC semantic analysis tests -----------------===//

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace chimera;

namespace {

std::string checkErrors(const std::string &Source) {
  support::Expected<std::unique_ptr<Program>> Prog = parseMiniC(Source);
  return Prog ? std::string() : Prog.error().message();
}

#define EXPECT_SEMA_OK(Source) EXPECT_EQ(checkErrors(Source), "")
#define EXPECT_SEMA_ERROR(Source, Fragment)                                   \
  EXPECT_NE(checkErrors(Source).find(Fragment), std::string::npos)            \
      << checkErrors(Source)

} // namespace

TEST(Sema, MinimalProgram) { EXPECT_SEMA_OK("int main() { return 0; }"); }

TEST(Sema, MissingMain) {
  EXPECT_SEMA_ERROR("void f() { }", "no 'main'");
}

TEST(Sema, MainWithParamsRejected) {
  EXPECT_SEMA_ERROR("int main(int x) { return x; }", "no parameters");
}

TEST(Sema, UndeclaredIdentifier) {
  EXPECT_SEMA_ERROR("int main() { return nope; }", "undeclared");
}

TEST(Sema, DuplicateGlobal) {
  EXPECT_SEMA_ERROR("int g;\nint g;\nint main() { return 0; }",
                    "redefinition");
}

TEST(Sema, DuplicateLocalSameScope) {
  EXPECT_SEMA_ERROR("int main() { int x; int x; return 0; }",
                    "redefinition");
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  EXPECT_SEMA_OK("int main() { int x = 1; { int x = 2; x++; } return x; }");
}

TEST(Sema, PointerTypeMismatch) {
  EXPECT_SEMA_ERROR("int main() { int* p = 3; return 0; }",
                    "cannot initialize");
  EXPECT_SEMA_ERROR("int a[4];\nint main() { int x = &a[0]; return 0; }",
                    "cannot initialize");
}

TEST(Sema, ArrayDecaysToPointer) {
  EXPECT_SEMA_OK("int a[4];\nint main() { int* p = a; return p[0]; }");
}

TEST(Sema, CannotAssignToArrayName) {
  EXPECT_SEMA_ERROR("int a[4];\nint main() { a = 0; return 0; }",
                    "cannot assign to array");
}

TEST(Sema, IndexingNonPointerRejected) {
  EXPECT_SEMA_ERROR("int main() { int x; return x[0]; }",
                    "array or pointer");
}

TEST(Sema, PointerArithmeticAllowed) {
  EXPECT_SEMA_OK("int a[8];\nint main() { int* p = a + 2; p = p - 1; "
                 "return p[0]; }");
}

TEST(Sema, PointerTimesIntRejected) {
  EXPECT_SEMA_ERROR("int a[8];\nint main() { int* p = a; int x = 0; "
                    "p = p * 2; return x; }",
                    "invalid operands");
}

TEST(Sema, SyncObjectAsValueRejected) {
  EXPECT_SEMA_ERROR("mutex m;\nint main() { return m; }",
                    "cannot be used as a value");
}

TEST(Sema, LockRequiresMutex) {
  EXPECT_SEMA_ERROR("cond c;\nint main() { lock(c); return 0; }",
                    "must name a mutex");
  EXPECT_SEMA_ERROR("int main() { lock(1); return 0; }", "must name a");
}

TEST(Sema, CondWaitSignature) {
  EXPECT_SEMA_OK("mutex m;\ncond c;\n"
                 "int main() { lock(m); cond_wait(c, m); unlock(m); "
                 "return 0; }");
  EXPECT_SEMA_ERROR("mutex m;\ncond c;\nint main() { cond_wait(m, c); "
                    "return 0; }",
                    "condition variable");
}

TEST(Sema, BarrierPartiesMustBeConstant) {
  EXPECT_SEMA_OK("barrier b(2 + 2);\nint main() { barrier_wait(b); "
                 "return 0; }");
  EXPECT_SEMA_ERROR("barrier b(0);\nint main() { return 0; }",
                    "positive constant");
}

TEST(Sema, SpawnChecksTargetAndArgs) {
  EXPECT_SEMA_OK("void w(int a) { }\n"
                 "int main() { int t = spawn(w, 1); join(t); return 0; }");
  EXPECT_SEMA_ERROR("int main() { int t = spawn(3); return t; }",
                    "must name a function");
  EXPECT_SEMA_ERROR("void w(int a) { }\nint main() { int t = spawn(w); "
                    "return t; }",
                    "takes");
}

TEST(Sema, SpawnArgTypeMismatch) {
  EXPECT_SEMA_ERROR("void w(int* p) { }\nint main() { int t = spawn(w, 5); "
                    "return t; }",
                    "mismatch");
}

TEST(Sema, CallArityAndTypes) {
  EXPECT_SEMA_ERROR("int f(int a) { return a; }\n"
                    "int main() { return f(); }",
                    "takes 1 argument");
  EXPECT_SEMA_ERROR("int f(int* p) { return p[0]; }\n"
                    "int main() { return f(7); }",
                    "mismatch");
}

TEST(Sema, VoidFunctionValueUseRejected) {
  EXPECT_SEMA_ERROR("void f() { }\nint main() { return f(); }",
                    "void value");
  EXPECT_SEMA_ERROR("void f() { }\nint main() { int x = f(); return 0; }",
                    "cannot initialize");
}

TEST(Sema, ReturnConsistency) {
  EXPECT_SEMA_ERROR("void f() { return 3; }\nint main() { return 0; }",
                    "void function cannot return a value");
  EXPECT_SEMA_ERROR("int f() { return; }\nint main() { return 0; }",
                    "must return a value");
}

TEST(Sema, BreakOutsideLoop) {
  EXPECT_SEMA_ERROR("int main() { break; return 0; }", "outside of a loop");
  EXPECT_SEMA_ERROR("int main() { continue; return 0; }",
                    "outside of a loop");
}

TEST(Sema, BreakInsideLoopOk) {
  EXPECT_SEMA_OK("int main() { while (1) { break; } "
                 "int i; for (i = 0; i < 3; i++) { continue; } return 0; }");
}

TEST(Sema, BuiltinsTypeCheck) {
  EXPECT_SEMA_OK("int main() { int* p = alloc(8); p[0] = input(); "
                 "output(p[0] + net_recv() + file_read()); yield(); "
                 "return 0; }");
  EXPECT_SEMA_ERROR("int main() { input(3); return 0; }", "expects 0");
}

TEST(Sema, AddrOfScalarGlobalOk) {
  EXPECT_SEMA_OK("int g;\nint main() { int* p = &g; return p[0]; }");
}

TEST(Sema, AddrOfIndexedScalarRejected) {
  EXPECT_SEMA_ERROR("int g;\nint main() { int* p = &g[1]; return 0; }",
                    "cannot index a scalar");
}

TEST(Sema, AddrOfLocalIntRejected) {
  EXPECT_SEMA_ERROR("int main() { int x; int* p = &x; return 0; }",
                    "requires a global variable or pointer");
}

TEST(Sema, PointerComparisonAllowed) {
  EXPECT_SEMA_OK("int a[4];\nint main() { int* p = a; int* q = a + 1; "
                 "return p == q; }");
}
