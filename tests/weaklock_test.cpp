//===- tests/weaklock_test.cpp - Weak-lock manager and revocation ----------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "instrument/Instrumenter.h"
#include "runtime/Machine.h"
#include "runtime/WeakLock.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::rt;

//===----------------------------------------------------------------------===//
// WeakLockManager unit tests
//===----------------------------------------------------------------------===//

TEST(WeakLockManager, UnrangedIsExclusive) {
  WeakLockManager WL;
  WL.init(1);
  EXPECT_TRUE(WL.tryAcquire(0, {1, false, 0, 0, 0, 0}));
  EXPECT_FALSE(WL.tryAcquire(0, {2, false, 0, 0, 0, 0}));
  EXPECT_TRUE(WL.removeHolder(0, 1));
  EXPECT_TRUE(WL.tryAcquire(0, {2, false, 0, 0, 0, 0}));
}

TEST(WeakLockManager, DisjointRangesCoexist) {
  WeakLockManager WL;
  WL.init(1);
  EXPECT_TRUE(WL.tryAcquire(0, {1, true, 0, 9, 0, 1}));
  EXPECT_TRUE(WL.tryAcquire(0, {2, true, 10, 19, 0, 1}));
  EXPECT_EQ(WL.numHolders(0), 2u);
  // Overlapping range blocks.
  EXPECT_FALSE(WL.tryAcquire(0, {3, true, 5, 12, 0, 1}));
  // Unranged conflicts with any holder.
  EXPECT_FALSE(WL.tryAcquire(0, {4, false, 0, 0, 0, 1}));
}

TEST(WeakLockManager, RangedBlockedByUnrangedHolder) {
  WeakLockManager WL;
  WL.init(1);
  EXPECT_TRUE(WL.tryAcquire(0, {1, false, 0, 0, 0, 0}));
  EXPECT_FALSE(WL.tryAcquire(0, {2, true, 100, 200, 0, 0}));
}

TEST(WeakLockManager, FifoFairnessBlocksQueueJumping) {
  WeakLockManager WL;
  WL.init(1);
  ASSERT_TRUE(WL.tryAcquire(0, {1, true, 0, 9, 0, 0}));
  // Thread 2 waits on an overlapping range.
  WL.enqueue(0, {2, true, 5, 14, 10, 0});
  // Thread 3's range is free *now*, but it conflicts with waiter 2 and
  // must not jump the queue.
  EXPECT_FALSE(WL.tryAcquire(0, {3, true, 12, 20, 20, 0}));
  // A waiter-compatible range may proceed.
  EXPECT_TRUE(WL.tryAcquire(0, {4, true, 50, 59, 20, 0}));
}

TEST(WeakLockManager, GrantWaitersInOrderWithSkips) {
  WeakLockManager WL;
  WL.init(1);
  ASSERT_TRUE(WL.tryAcquire(0, {1, true, 0, 9, 0, 0}));
  WL.enqueue(0, {2, true, 0, 9, 1, 0});   // Conflicts with holder.
  WL.enqueue(0, {3, true, 20, 29, 2, 0}); // Would fit, but FIFO.
  auto Granted = WL.grantWaiters(0, 5);
  EXPECT_TRUE(Granted.empty()); // Front waiter still blocked.
  WL.removeHolder(0, 1);
  Granted = WL.grantWaiters(0, 6);
  ASSERT_EQ(Granted.size(), 2u);
  EXPECT_EQ(Granted[0].Tid, 2u);
  EXPECT_EQ(Granted[1].Tid, 3u);
  EXPECT_EQ(WL.numHolders(0), 2u);
  EXPECT_EQ(WL.numWaiters(0), 0u);
}

TEST(WeakLockManager, GrantStopsAtFirstConflict) {
  WeakLockManager WL;
  WL.init(1);
  ASSERT_TRUE(WL.tryAcquire(0, {1, true, 0, 9, 0, 0}));
  WL.enqueue(0, {2, true, 0, 9, 1, 0});
  WL.enqueue(0, {3, true, 0, 9, 2, 0}); // Conflicts with waiter 2.
  WL.removeHolder(0, 1);
  auto Granted = WL.grantWaiters(0, 3);
  ASSERT_EQ(Granted.size(), 1u);
  EXPECT_EQ(Granted[0].Tid, 2u);
  EXPECT_EQ(WL.numWaiters(0), 1u);
}

TEST(WeakLockManager, FindTimeoutIdentifiesVictim) {
  WeakLockManager WL;
  WL.init(2);
  ASSERT_TRUE(WL.tryAcquire(1, {7, false, 0, 0, 100, 0}));
  WL.enqueue(1, {8, false, 0, 0, 200, 0});
  auto TO = WL.findTimeout(/*Now=*/100000, /*Timeout=*/50000);
  ASSERT_TRUE(TO.Found);
  EXPECT_EQ(TO.LockId, 1u);
  EXPECT_EQ(TO.VictimTid, 7u);
  EXPECT_EQ(TO.WaiterTid, 8u);
  // Not yet timed out.
  EXPECT_FALSE(WL.findTimeout(200 + 49999, 50000).Found);
}

TEST(WeakLockManager, HolderLookup) {
  WeakLockManager WL;
  WL.init(1);
  ASSERT_TRUE(WL.tryAcquire(0, {5, true, 10, 20, 0, 2}));
  const WeakRequest *H = WL.holder(0, 5);
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Lo, 10u);
  EXPECT_EQ(H->SiteGran, 2u);
  EXPECT_EQ(WL.holder(0, 6), nullptr);
}

//===----------------------------------------------------------------------===//
// End-to-end revocation (paper §2.3): a weak-lock held across a blocking
// wait would deadlock a peer; the timeout forces the owner to release.
//===----------------------------------------------------------------------===//

namespace {

/// A program where thread A holds a weak-lock across a condvar wait that
/// only thread B (blocked on the same weak-lock) can satisfy. Without
/// revocation this deadlocks; with it, both finish.
std::unique_ptr<ir::Module> buildRevocationModule() {
  // MiniC source with a hand-planned weak-lock: we instrument manually
  // to control exactly where the weak-lock sits.
    auto M = test::compileOrNull(
      "int flag;\nint done[2];\nmutex m;\ncond cv;\n"
      "void a() { lock(m); while (flag == 0) { cond_wait(cv, m); } "
      "unlock(m); done[0] = 1; }\n"
      "void b() { lock(m); flag = 1; cond_signal(cv); unlock(m); "
      "done[1] = 1; }\n"
      "int main() { int ta = spawn(a); int tb = spawn(b); "
      "join(ta); join(tb); output(done[0] + done[1]); return 0; }",
      "revoke");

  // Wrap the *entire bodies* of a() and b() in weak-lock 0 by inserting
  // acquire at entry and release before each Ret.
  M->WeakLocks.push_back({ir::WeakLockGranularity::Function, "wl", false});
  for (const char *Name : {"a", "b"}) {
    ir::Function &F = *M->findFunction(Name);
    // Acquire at entry.
    ir::Instruction Acq;
    Acq.Op = ir::Opcode::WeakAcquire;
    Acq.Imm = 0;
    Acq.Id2 = 0;
    Acq.Ident = F.newInstId();
    F.block(0).Insts.insert(F.block(0).Insts.begin(), Acq);
    // Release before every Ret.
    for (auto &BB : F.Blocks) {
      if (!BB.hasTerminator() ||
          BB.terminator().Op != ir::Opcode::Ret)
        continue;
      ir::Instruction Rel;
      Rel.Op = ir::Opcode::WeakRelease;
      Rel.Imm = 0;
      Rel.Id2 = 0;
      Rel.Ident = F.newInstId();
      BB.Insts.insert(BB.Insts.end() - 1, Rel);
    }
  }
  return M;
}

} // namespace

TEST(Revocation, TimeoutBreaksWeakLockDeadlock) {
  auto M = buildRevocationModule();
  MachineOptions MO;
  MO.Mode = ExecMode::Record;
  MO.Seed = 3;
  MO.WeakLockTimeout = 20000; // Small: force the revocation path.
  Machine Mx(*M, MO);
  auto R = Mx.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{2}));
  EXPECT_GE(R.Stats.Revocations, 1u);
  EXPECT_FALSE(R.Log.Revocations.empty());
}

TEST(Revocation, WithoutTimeoutItDeadlocks) {
  auto M = buildRevocationModule();
  MachineOptions MO;
  MO.Seed = 3;
  MO.WeakLockTimeout = ~0ull; // Effectively disabled.
  Machine Mx(*M, MO);
  auto R = Mx.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos);
}

TEST(Revocation, ReplayReproducesRevocations) {
  auto M = buildRevocationModule();
  MachineOptions MO;
  MO.Mode = ExecMode::Record;
  MO.Seed = 3;
  MO.WeakLockTimeout = 20000;
  Machine Rec(*M, MO);
  auto R = Rec.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_GE(R.Stats.Revocations, 1u);

  MachineOptions PO;
  PO.Mode = ExecMode::Replay;
  PO.Seed = 999;
  PO.ReplayLog = &R.Log;
  Machine Rep(*M, PO);
  auto P = Rep.run();
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.StateHash, R.StateHash);
  EXPECT_EQ(P.Stats.Revocations, R.Stats.Revocations);
}

TEST(Revocation, ManySeedsRemainDeterministic) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    auto M = buildRevocationModule();
    MachineOptions MO;
    MO.Mode = ExecMode::Record;
    MO.Seed = Seed;
    MO.WeakLockTimeout = 15000;
    Machine Rec(*M, MO);
    auto R = Rec.run();
    ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;

    MachineOptions PO;
    PO.Mode = ExecMode::Replay;
    PO.ReplayLog = &R.Log;
    Machine Rep(*M, PO);
    auto P = Rep.run();
    ASSERT_TRUE(P.Ok) << "seed " << Seed << ": " << P.Error;
    EXPECT_EQ(P.StateHash, R.StateHash) << "seed " << Seed;
  }
}
