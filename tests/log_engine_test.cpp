//===- tests/log_engine_test.cpp - Segmented log storage engine ------------===//
//
// The `robust` matrix for the crash-safe log engine: round trips through
// the segmented on-disk format, async-vs-sync compression byte equality,
// checkpointed resume against cold replay, and exhaustive fault
// injection (bit-flips at every byte, truncation at every length,
// dropped and duplicated segments, corrupt compressed streams). Every
// fault must either recover or surface a typed error naming the segment
// and offset — never crash, never silently diverge.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Pipeline.h"
#include "replay/Checkpoint.h"
#include "replay/LogCodec.h"
#include "replay/LogFormat.h"
#include "replay/LogReader.h"
#include "support/Compressor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace chimera;

namespace {

// Small enough that per-byte fault loops stay cheap: two threads, a few
// lock-protected input reads, no checkpoints unless asked.
const char *SmallProgram =
    "int tids[2];\nmutex m;\nint c;\n"
    "void w(int n) { int i; for (i = 0; i < n; i++) { lock(m); "
    "c = c + (input() & 15); unlock(m); } }\n"
    "int main() { tids[0] = spawn(w, 6); tids[1] = spawn(w, 6); "
    "join(tids[0]); join(tids[1]); output(c); return 0; }";

// Enough weak-lock traffic for many segments and several checkpoints.
const char *BusyProgram =
    "int c;\nint hist[4];\nint tids[4];\n"
    "void w(int id, int n) { int i; int h = 0; for (i = 0; i < n; i++) { "
    "int t = c; c = t + 1; h = (h * 31 + t) & 1048575; } "
    "hist[id] = h; }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { "
    "tids[j] = spawn(w, j, 200); } "
    "for (j = 0; j < 4; j++) { join(tids[j]); } "
    "output(c); int k; for (k = 0; k < 4; k++) { output(hist[k]); } "
    "return 0; }";

std::unique_ptr<core::ChimeraPipeline>
pipelineFor(const char *Source, unsigned Jobs, uint64_t SegmentBytes,
            uint64_t CheckpointEvery) {
  core::PipelineConfig Config;
  Config.ProfileRuns = 5;
  Config.AnalysisJobs = Jobs;
  Config.SegmentBytes = SegmentBytes;
  Config.CheckpointEvery = CheckpointEvery;
  auto P = core::ChimeraPipeline::create({.Eval = Source, .Config = Config});
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "chimera_" + Name + ".clg";
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

/// Records \p Source through the streaming engine and returns the file
/// bytes via \p Bytes; the in-memory result via the return value.
rt::ExecutionResult recordTo(core::ChimeraPipeline &P, const std::string &Path,
                             uint64_t Seed, std::vector<uint8_t> &Bytes) {
  auto R = P.recordStreamed(Path, Seed);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.error().message());
  if (!R)
    return rt::ExecutionResult();
  Bytes = readFileBytes(Path);
  std::remove(Path.c_str());
  return R.take();
}

void expectLogsEqual(const rt::ExecutionLog &A, const rt::ExecutionLog &B) {
  EXPECT_EQ(A.NumSyncObjects, B.NumSyncObjects);
  EXPECT_EQ(A.NumWeakLocks, B.NumWeakLocks);
  EXPECT_EQ(A.NumThreads, B.NumThreads);
  ASSERT_EQ(A.PerObject.size(), B.PerObject.size());
  for (size_t Obj = 0; Obj != A.PerObject.size(); ++Obj)
    EXPECT_EQ(A.PerObject[Obj], B.PerObject[Obj]) << "object " << Obj;
  ASSERT_EQ(A.PerThreadInputs.size(), B.PerThreadInputs.size());
  for (size_t Tid = 0; Tid != A.PerThreadInputs.size(); ++Tid) {
    ASSERT_EQ(A.PerThreadInputs[Tid].size(), B.PerThreadInputs[Tid].size())
        << "thread " << Tid;
    for (size_t I = 0; I != A.PerThreadInputs[Tid].size(); ++I) {
      EXPECT_EQ(A.PerThreadInputs[Tid][I].Kind, B.PerThreadInputs[Tid][I].Kind);
      EXPECT_EQ(A.PerThreadInputs[Tid][I].Value,
                B.PerThreadInputs[Tid][I].Value);
    }
  }
  ASSERT_EQ(A.Revocations.size(), B.Revocations.size());
  for (size_t I = 0; I != A.Revocations.size(); ++I) {
    EXPECT_EQ(A.Revocations[I].Tid, B.Revocations[I].Tid);
    EXPECT_EQ(A.Revocations[I].LockId, B.Revocations[I].LockId);
    EXPECT_EQ(A.Revocations[I].Instret, B.Revocations[I].Instret);
  }
}

replay::LogReader::RecoveredLog recoverBytes(std::vector<uint8_t> Bytes) {
  auto Reader = replay::LogReader::open(std::move(Bytes),
                                        replay::LogReader::Options());
  EXPECT_TRUE(Reader.hasValue()) << (Reader ? "" : Reader.error().message());
  if (!Reader)
    return replay::LogReader::RecoveredLog();
  return Reader->recover();
}

/// (offset, length) of every segment in \p Bytes, by walking the
/// headers' StoredSize fields. The walk ends at the CIDX footer when
/// the file carries one (checkpointed logs, format 1.1).
std::vector<std::pair<size_t, size_t>>
segmentExtents(const std::vector<uint8_t> &Bytes) {
  size_t DataEnd = Bytes.size();
  {
    std::vector<replay::CidxEntry> Entries;
    size_t FooterStart = 0;
    if (replay::readCidxFooter(Bytes, Bytes.size(), Entries, FooterStart))
      DataEnd = FooterStart;
  }
  std::vector<std::pair<size_t, size_t>> Out;
  size_t Off = replay::FileHeaderBytes;
  while (Off + replay::SegmentHeaderBytes <= DataEnd) {
    uint32_t Stored = replay::readLe32(Bytes.data() + Off + 16);
    size_t Len = replay::SegmentHeaderBytes + Stored;
    Out.emplace_back(Off, Len);
    Off += Len;
  }
  EXPECT_EQ(Off, DataEnd) << "segment walk out of sync with the file";
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(LogEngine, SyncRoundTripMatchesInMemoryLog) {
  auto P = pipelineFor(SmallProgram, /*Jobs=*/1, 512, /*CheckpointEvery=*/16);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("sync_roundtrip"), 7, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  ASSERT_GE(Bytes.size(), replay::FileHeaderBytes + replay::SegmentHeaderBytes);

  auto Reader = replay::LogReader::open(Bytes, replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  EXPECT_EQ(Reader->fingerprint(), P->workloadFingerprint());
  auto RL = Reader->recover();
  ASSERT_TRUE(RL.Complete) << RL.Failure.message();
  EXPECT_GE(RL.SegmentsRead, 1u);
  EXPECT_GT(RL.RecordsRecovered, 0u);
  expectLogsEqual(RL.Log, Rec.Log);

  // The recovered log replays to the recorded state.
  auto Rep = P->replay(RL.Log);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.StateHash, Rec.StateHash);
}

TEST(LogEngine, AsyncCompressionIsBitIdenticalToSync) {
  // Same program, same seed; the only difference is whether segment
  // compression runs inline (1 worker) or on the pool (4 workers). The
  // files must be byte-identical — async is a latency optimization, not
  // a format variant.
  std::vector<uint8_t> SyncBytes, AsyncBytes;
  {
    auto P = pipelineFor(BusyProgram, /*Jobs=*/1, 512, 256);
    ASSERT_NE(P, nullptr);
    auto Rec = recordTo(*P, tmpPath("sync_bytes"), 42, SyncBytes);
    ASSERT_TRUE(Rec.Ok) << Rec.Error;
  }
  {
    auto P = pipelineFor(BusyProgram, /*Jobs=*/4, 512, 256);
    ASSERT_NE(P, nullptr);
    auto Rec = recordTo(*P, tmpPath("async_bytes"), 42, AsyncBytes);
    ASSERT_TRUE(Rec.Ok) << Rec.Error;
  }
  ASSERT_GT(segmentExtents(SyncBytes).size(), 2u)
      << "program too small to exercise segment ordering";
  EXPECT_EQ(SyncBytes, AsyncBytes);
}

TEST(LogEngine, StreamingNextRebuildsTheRecordedLog) {
  // Hand-driven record iteration (the API the old whole-buffer decode
  // wrapper was deprecated in favor of): draining next() and applying
  // each record rebuilds exactly the in-memory log.
  auto P = pipelineFor(SmallProgram, 1, 512, 0);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("streaming_next"), 3, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  auto Reader = replay::LogReader::open(Bytes, replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  rt::ExecutionLog Log;
  replay::LogReader::Record R;
  for (;;) {
    auto Got = Reader->next(R);
    ASSERT_TRUE(Got.hasValue()) << Got.error().message();
    if (!*Got)
      break;
    switch (R.Tag) {
    case replay::RecordTag::Meta:
      Log.NumSyncObjects = R.NumSyncObjects;
      Log.NumWeakLocks = R.NumWeakLocks;
      Log.PerObject.resize(Log.numOrderedObjects());
      break;
    case replay::RecordTag::Ordered:
      ASSERT_LT(R.Obj, Log.PerObject.size());
      Log.PerObject[R.Obj].push_back({R.Tid, R.Op});
      break;
    case replay::RecordTag::Input:
      if (R.Tid >= Log.PerThreadInputs.size())
        Log.PerThreadInputs.resize(R.Tid + 1);
      Log.PerThreadInputs[R.Tid].push_back({R.Kind, R.Value});
      break;
    case replay::RecordTag::Revocation:
      Log.Revocations.push_back(R.Rev);
      break;
    case replay::RecordTag::Checkpoint:
      break;
    case replay::RecordTag::End:
      Log.NumThreads = R.NumThreads;
      if (Log.PerThreadInputs.size() < R.NumThreads)
        Log.PerThreadInputs.resize(R.NumThreads);
      EXPECT_EQ(Log.totalOrderedEvents(), R.TotalOrdered);
      EXPECT_EQ(Log.totalInputEvents(), R.TotalInputs);
      break;
    }
  }
  EXPECT_TRUE(Reader->sawEnd());
  expectLogsEqual(Log, Rec.Log);
}

TEST(LogEngine, FingerprintMismatchIsRejected) {
  auto P = pipelineFor(SmallProgram, 1, 512, 0);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("fingerprint"), 5, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  replay::LogReader::Options Good;
  Good.CheckFingerprint = true;
  Good.ExpectedFingerprint = P->workloadFingerprint();
  EXPECT_TRUE(replay::LogReader::open(Bytes, Good).hasValue());

  replay::LogReader::Options Bad = Good;
  Bad.ExpectedFingerprint = Good.ExpectedFingerprint + 1;
  auto Reader = replay::LogReader::open(Bytes, Bad);
  ASSERT_FALSE(Reader.hasValue());
  EXPECT_NE(Reader.error().message().find("fingerprint"), std::string::npos)
      << Reader.error().message();
}

TEST(LogEngine, GarbageAndEmptyInputsAreRejected) {
  EXPECT_FALSE(
      replay::LogReader::open({}, replay::LogReader::Options()).hasValue());
  std::vector<uint8_t> Garbage(64, 0xab);
  EXPECT_FALSE(
      replay::LogReader::open(Garbage, replay::LogReader::Options())
          .hasValue());
}

TEST(LogEngine, StreamedRecordsEndWithMatchingTotals) {
  auto P = pipelineFor(SmallProgram, 1, 512, 16);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("stream_totals"), 11, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  auto Reader = replay::LogReader::open(Bytes, replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  uint64_t Ordered = 0, Inputs = 0, Checkpoints = 0;
  bool SawMeta = false, First = true;
  replay::LogReader::Record R;
  for (;;) {
    auto Next = Reader->next(R);
    ASSERT_TRUE(Next.hasValue()) << Next.error().message();
    if (!*Next)
      break;
    if (First) {
      EXPECT_EQ(R.Tag, replay::RecordTag::Meta) << "Meta must come first";
      First = false;
    }
    switch (R.Tag) {
    case replay::RecordTag::Meta:
      SawMeta = true;
      EXPECT_EQ(R.NumSyncObjects, Rec.Log.NumSyncObjects);
      EXPECT_EQ(R.NumWeakLocks, Rec.Log.NumWeakLocks);
      break;
    case replay::RecordTag::Ordered:
      ++Ordered;
      break;
    case replay::RecordTag::Input:
      ++Inputs;
      break;
    case replay::RecordTag::Checkpoint:
      ++Checkpoints;
      break;
    case replay::RecordTag::End:
      EXPECT_EQ(R.TotalOrdered, Rec.Log.totalOrderedEvents());
      EXPECT_EQ(R.TotalInputs, Rec.Log.totalInputEvents());
      EXPECT_EQ(R.NumThreads, Rec.Log.NumThreads);
      break;
    default:
      break;
    }
  }
  EXPECT_TRUE(SawMeta);
  EXPECT_TRUE(Reader->sawEnd());
  EXPECT_EQ(Ordered, Rec.Log.totalOrderedEvents());
  EXPECT_EQ(Inputs, Rec.Log.totalInputEvents());
  EXPECT_GT(Checkpoints, 0u);
}

TEST(LogEngine, RecoverPublishesMetrics) {
  auto P = pipelineFor(SmallProgram, 1, 512, 16);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("recover_metrics"), 9, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  obs::Registry Reg;
  replay::LogReader::Options Opts;
  Opts.Metrics = &Reg;
  auto Reader = replay::LogReader::open(std::move(Bytes), Opts);
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  auto RL = Reader->recover();
  ASSERT_TRUE(RL.Complete) << RL.Failure.message();

  auto Snap = Reg.snapshot();
  EXPECT_EQ(Snap.value("replay.recover.recovered", -1), 1);
  EXPECT_EQ(Snap.value("replay.recover.segments_read", -1),
            static_cast<int64_t>(RL.SegmentsRead));
  EXPECT_EQ(Snap.value("replay.recover.records_recovered", -1),
            static_cast<int64_t>(RL.RecordsRecovered));
  EXPECT_EQ(Snap.value("replay.recover.checkpoints_merged", -1),
            static_cast<int64_t>(RL.CheckpointsMerged));
  EXPECT_GT(RL.CheckpointsMerged, 0u);
}

//===----------------------------------------------------------------------===//
// Checkpointed resume
//===----------------------------------------------------------------------===//

TEST(LogCheckpoint, SeekToLastCheckpointResumesBitIdentical) {
  auto P = pipelineFor(BusyProgram, 1, 512, 256);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("seek_resume"), 13, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  auto RL = recoverBytes(Bytes);
  ASSERT_TRUE(RL.Complete) << RL.Failure.message();
  ASSERT_GT(RL.CheckpointsMerged, 0u);
  auto Cold = P->replay(RL.Log);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  ASSERT_EQ(Cold.StateHash, Rec.StateHash);

  auto Reader = replay::LogReader::open(std::move(Bytes),
                                        replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  auto Snap = Reader->seekToCheckpoint();
  ASSERT_TRUE(Snap.hasValue()) << Snap.error().message();
  EXPECT_GT(Snap->LogEventsAtCapture, 0u);

  auto Resumed = P->replayResumed(RL.Log, *Snap);
  ASSERT_TRUE(Resumed.Ok) << Resumed.Error;
  EXPECT_EQ(Resumed.StateHash, Cold.StateHash);
  EXPECT_EQ(Resumed.Output, Cold.Output);
}

TEST(LogCheckpoint, ResumeFromEveryCheckpointMatchesColdReplay) {
  auto P = pipelineFor(BusyProgram, 1, 512, 512);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("resume_all"), 21, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  auto Reader = replay::LogReader::open(std::move(Bytes),
                                        replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  std::vector<rt::MachineSnapshot> Snaps;
  replay::LogReader::Record R;
  for (;;) {
    auto Next = Reader->next(R);
    ASSERT_TRUE(Next.hasValue()) << Next.error().message();
    if (!*Next)
      break;
    if (R.Tag == replay::RecordTag::Checkpoint)
      Snaps.push_back(R.Snapshot);
  }
  ASSERT_GT(Snaps.size(), 1u) << "need several checkpoints to be meaningful";

  for (size_t I = 0; I != Snaps.size(); ++I) {
    auto Resumed = P->replayResumed(Rec.Log, Snaps[I]);
    ASSERT_TRUE(Resumed.Ok) << "checkpoint " << I << ": " << Resumed.Error;
    EXPECT_EQ(Resumed.StateHash, Rec.StateHash) << "checkpoint " << I;
  }
}

TEST(LogCheckpoint, TruncatedCheckpointBodyIsRejected) {
  auto P = pipelineFor(SmallProgram, 1, 512, 16);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("ckpt_body"), 17, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  auto RL = recoverBytes(std::move(Bytes));
  ASSERT_TRUE(RL.Complete) << RL.Failure.message();
  ASSERT_NE(RL.LastCheckpoint, nullptr);

  std::vector<uint64_t> PrevG, PrevH;
  auto Body = replay::encodeCheckpoint(*RL.LastCheckpoint, PrevG, PrevH);
  ASSERT_FALSE(Body.empty());

  // The intact body decodes and revalidates its state hash.
  {
    std::vector<uint64_t> AccumG, AccumH;
    auto Snap = replay::decodeCheckpoint(Body, AccumG, AccumH);
    ASSERT_TRUE(Snap.hasValue()) << Snap.error().message();
    EXPECT_EQ(rt::snapshotStateHash(*Snap), Snap->StateHash);
  }
  // Every proper prefix must fail with a typed error, never crash.
  for (size_t Len = 0; Len != Body.size(); ++Len) {
    std::vector<uint8_t> Cut(Body.begin(), Body.begin() + Len);
    std::vector<uint64_t> AccumG, AccumH;
    auto Snap = replay::decodeCheckpoint(Cut, AccumG, AccumH);
    EXPECT_FALSE(Snap.hasValue()) << "length " << Len << " decoded";
  }
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(LogFaults, BitFlipAtEveryByteIsDetectedOrHarmless) {
  auto P = pipelineFor(SmallProgram, 1, 512, 0);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("bitflip"), 29, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  uint64_t TotalRecords = recoverBytes(Bytes).RecordsRecovered;
  ASSERT_GT(TotalRecords, 0u);

  for (size_t Off = 0; Off != Bytes.size(); ++Off) {
    std::vector<uint8_t> Flipped = Bytes;
    Flipped[Off] ^= 0xff;
    auto Reader = replay::LogReader::open(std::move(Flipped),
                                          replay::LogReader::Options());
    if (Off < 8) {
      // Magic / version / file flags: open itself must refuse.
      EXPECT_FALSE(Reader.hasValue()) << "offset " << Off;
      continue;
    }
    ASSERT_TRUE(Reader.hasValue())
        << "offset " << Off << ": " << Reader.error().message();
    auto RL = Reader->recover();
    if (Off < replay::FileHeaderBytes) {
      // Fingerprint bytes: harmless unless the caller pins a fingerprint.
      EXPECT_TRUE(RL.Complete) << "offset " << Off;
      continue;
    }
    // Every byte past the file header is covered by a header or payload
    // CRC: the flip must be detected, recovery must keep a valid prefix,
    // and the error must name the damaged segment.
    EXPECT_FALSE(RL.Complete) << "offset " << Off << " went undetected";
    EXPECT_TRUE(bool(RL.Failure)) << "offset " << Off;
    EXPECT_NE(RL.Failure.message().find("segment"), std::string::npos)
        << "offset " << Off << ": " << RL.Failure.message();
    EXPECT_LT(RL.RecordsRecovered, TotalRecords) << "offset " << Off;
  }
}

TEST(LogFaults, TruncationAtEveryLengthDegradesGracefully) {
  auto P = pipelineFor(SmallProgram, 1, 512, 0);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("truncate"), 31, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  uint64_t TotalRecords = recoverBytes(Bytes).RecordsRecovered;

  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    auto Reader = replay::LogReader::open(std::move(Cut),
                                          replay::LogReader::Options());
    if (Len < replay::FileHeaderBytes) {
      EXPECT_FALSE(Reader.hasValue()) << "length " << Len;
      continue;
    }
    ASSERT_TRUE(Reader.hasValue())
        << "length " << Len << ": " << Reader.error().message();
    auto RL = Reader->recover();
    // No proper prefix carries the End record, so none is complete; the
    // failure names the damaged segment, the missing End, or (for a cut
    // right after the file header) the empty stream.
    EXPECT_FALSE(RL.Complete) << "length " << Len;
    EXPECT_TRUE(bool(RL.Failure)) << "length " << Len;
    const std::string &Msg = RL.Failure.message();
    EXPECT_TRUE(Msg.find("segment") != std::string::npos ||
                Msg.find("End record") != std::string::npos ||
                Msg.find("empty") != std::string::npos)
        << "length " << Len << ": " << Msg;
    EXPECT_LE(RL.RecordsRecovered, TotalRecords);
  }
}

TEST(LogFaults, DroppedSegmentReportsSequenceGap) {
  auto P = pipelineFor(BusyProgram, 1, 512, 0);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("dropped"), 37, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  auto Extents = segmentExtents(Bytes);
  ASSERT_GT(Extents.size(), 2u);

  // Remove the middle segment wholesale.
  auto [Off, Len] = Extents[1];
  std::vector<uint8_t> Damaged = Bytes;
  Damaged.erase(Damaged.begin() + Off, Damaged.begin() + Off + Len);

  auto RL = recoverBytes(std::move(Damaged));
  EXPECT_FALSE(RL.Complete);
  EXPECT_NE(RL.Failure.message().find("dropped"), std::string::npos)
      << RL.Failure.message();
  // Everything before the gap is preserved.
  EXPECT_EQ(RL.SegmentsRead, 1u);
  EXPECT_GT(RL.RecordsRecovered, 0u);
}

TEST(LogFaults, DuplicatedSegmentReportsRegression) {
  auto P = pipelineFor(BusyProgram, 1, 512, 0);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(*P, tmpPath("duplicated"), 41, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  auto Extents = segmentExtents(Bytes);
  ASSERT_GT(Extents.size(), 2u);

  // Splice a second copy of segment 1 right after itself.
  auto [Off, Len] = Extents[1];
  std::vector<uint8_t> Damaged = Bytes;
  std::vector<uint8_t> Copy(Bytes.begin() + Off, Bytes.begin() + Off + Len);
  Damaged.insert(Damaged.begin() + Off + Len, Copy.begin(), Copy.end());

  auto RL = recoverBytes(std::move(Damaged));
  EXPECT_FALSE(RL.Complete);
  EXPECT_NE(RL.Failure.message().find("duplicated"), std::string::npos)
      << RL.Failure.message();
  EXPECT_EQ(RL.SegmentsRead, 2u);
}

//===----------------------------------------------------------------------===//
// CIDX checkpoint-index footer faults
//
// The footer is advisory: any damage to it must leave recovery complete
// (old readers ignore it entirely), drop checkpoint enumeration back to
// the linear scan, and never select a checkpoint the recovery path
// would reject.
//===----------------------------------------------------------------------===//

namespace {

void expectInfosEqual(const std::vector<replay::LogReader::CheckpointInfo> &A,
                      const std::vector<replay::LogReader::CheckpointInfo> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Index, B[I].Index) << "checkpoint " << I;
    EXPECT_EQ(A[I].SegmentOffset, B[I].SegmentOffset) << "checkpoint " << I;
    EXPECT_EQ(A[I].Seq, B[I].Seq) << "checkpoint " << I;
    EXPECT_EQ(A[I].PayloadPos, B[I].PayloadPos) << "checkpoint " << I;
    EXPECT_EQ(A[I].StateHash, B[I].StateHash) << "checkpoint " << I;
    EXPECT_EQ(A[I].LogEventsAtCapture, B[I].LogEventsAtCapture)
        << "checkpoint " << I;
  }
}

/// Records BusyProgram with checkpoints and returns the file bytes plus
/// the footer's start offset (asserts the footer exists).
std::vector<uint8_t> checkpointedBytes(core::ChimeraPipeline &P,
                                       const std::string &Name,
                                       size_t &FooterStart) {
  std::vector<uint8_t> Bytes;
  auto Rec = recordTo(P, tmpPath(Name), 13, Bytes);
  EXPECT_TRUE(Rec.Ok) << Rec.Error;
  std::vector<replay::CidxEntry> Entries;
  FooterStart = 0;
  EXPECT_TRUE(
      replay::readCidxFooter(Bytes, Bytes.size(), Entries, FooterStart))
      << "checkpointed log carries no CIDX footer";
  EXPECT_FALSE(Entries.empty());
  return Bytes;
}

} // namespace

TEST(LogFooter, FooterEnumerationMatchesLinearScan) {
  auto P = pipelineFor(BusyProgram, 1, 512, 256);
  ASSERT_NE(P, nullptr);
  size_t FooterStart = 0;
  auto Bytes = checkpointedBytes(*P, "footer_vs_scan", FooterStart);

  auto WithFooter = replay::LogReader::open(Bytes,
                                            replay::LogReader::Options());
  ASSERT_TRUE(WithFooter.hasValue());
  ASSERT_TRUE(WithFooter->hasCheckpointIndex());

  // Same file with the footer chopped off: the enumeration must come
  // from the linear scan and be identical entry for entry.
  std::vector<uint8_t> NoFooter(Bytes.begin(), Bytes.begin() + FooterStart);
  auto Scanned = replay::LogReader::open(std::move(NoFooter),
                                         replay::LogReader::Options());
  ASSERT_TRUE(Scanned.hasValue());
  EXPECT_FALSE(Scanned->hasCheckpointIndex());
  EXPECT_TRUE(recoverBytes({Bytes.begin(), Bytes.begin() + FooterStart})
                  .Complete)
      << "footer-less file must stay complete";
  expectInfosEqual(WithFooter->checkpoints(), Scanned->checkpoints());
}

TEST(LogFooter, BitFlipAnywhereInFooterFallsBackCleanly) {
  auto P = pipelineFor(BusyProgram, 1, 512, 256);
  ASSERT_NE(P, nullptr);
  size_t FooterStart = 0;
  auto Bytes = checkpointedBytes(*P, "footer_flip", FooterStart);

  auto Intact = replay::LogReader::open(Bytes, replay::LogReader::Options());
  ASSERT_TRUE(Intact.hasValue());
  const auto Reference = Intact->checkpoints();

  for (size_t Off = FooterStart; Off != Bytes.size(); ++Off) {
    std::vector<uint8_t> Flipped = Bytes;
    Flipped[Off] ^= 0xff;
    auto Reader = replay::LogReader::open(std::move(Flipped),
                                          replay::LogReader::Options());
    ASSERT_TRUE(Reader.hasValue()) << "offset " << Off;
    // The CRC (or the structural checks) must reject the footer...
    EXPECT_FALSE(Reader->hasCheckpointIndex()) << "offset " << Off;
    // ...the log body is untouched, so recovery stays complete...
    auto RL = Reader->recover();
    EXPECT_TRUE(RL.Complete) << "offset " << Off << ": "
                             << RL.Failure.message();
    // ...and the linear scan reproduces the same checkpoint list.
    expectInfosEqual(Reader->checkpoints(), Reference);
  }
}

TEST(LogFooter, TruncationInsideFooterKeepsLogComplete) {
  auto P = pipelineFor(BusyProgram, 1, 512, 256);
  ASSERT_NE(P, nullptr);
  size_t FooterStart = 0;
  auto Bytes = checkpointedBytes(*P, "footer_trunc", FooterStart);

  auto Intact = replay::LogReader::open(Bytes, replay::LogReader::Options());
  ASSERT_TRUE(Intact.hasValue());
  const auto Reference = Intact->checkpoints();

  for (size_t Len = FooterStart; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    auto Reader = replay::LogReader::open(std::move(Cut),
                                          replay::LogReader::Options());
    ASSERT_TRUE(Reader.hasValue()) << "length " << Len;
    EXPECT_FALSE(Reader->hasCheckpointIndex()) << "length " << Len;
    auto RL = Reader->recover();
    EXPECT_TRUE(RL.Complete) << "length " << Len << ": "
                             << RL.Failure.message();
    expectInfosEqual(Reader->checkpoints(), Reference);
  }
}

TEST(LogFooter, TrailingGarbageAfterFooterFallsBack) {
  auto P = pipelineFor(BusyProgram, 1, 512, 256);
  ASSERT_NE(P, nullptr);
  size_t FooterStart = 0;
  auto Bytes = checkpointedBytes(*P, "footer_garbage", FooterStart);

  auto Intact = replay::LogReader::open(Bytes, replay::LogReader::Options());
  ASSERT_TRUE(Intact.hasValue());
  const auto Reference = Intact->checkpoints();

  std::vector<uint8_t> Grown = Bytes;
  Grown.insert(Grown.end(), {0xde, 0xad, 0xbe, 0xef});
  auto Reader = replay::LogReader::open(std::move(Grown),
                                        replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue());
  EXPECT_FALSE(Reader->hasCheckpointIndex());
  EXPECT_TRUE(Reader->recover().Complete);
  expectInfosEqual(Reader->checkpoints(), Reference);
}

TEST(LogFooter, DamagedChainNeverSelectsUnrestorableCheckpoint) {
  // A valid footer pointing at a log whose body is damaged: chain
  // validation must discard the footer and return only the checkpoints
  // sequential recovery itself reaches — never one past the damage.
  auto P = pipelineFor(BusyProgram, 1, 512, 256);
  ASSERT_NE(P, nullptr);
  size_t FooterStart = 0;
  auto Bytes = checkpointedBytes(*P, "footer_chain", FooterStart);

  auto Extents = segmentExtents(Bytes);
  ASSERT_GT(Extents.size(), 2u);
  // Damage the payload of a middle segment; the footer itself stays
  // byte-identical and structurally valid.
  auto [Off, Len] = Extents[Extents.size() / 2];
  std::vector<uint8_t> Damaged = Bytes;
  Damaged[Off + replay::SegmentHeaderBytes] ^= 0xff;

  auto Reader = replay::LogReader::open(Damaged, replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue());
  EXPECT_TRUE(Reader->hasCheckpointIndex()) << "footer itself is intact";

  auto RL = Reader->recover();
  ASSERT_FALSE(RL.Complete);

  auto Chain = Reader->loadCheckpointChain();
  ASSERT_EQ(Chain.Infos.size(), Chain.Snapshots.size());
  EXPECT_EQ(Chain.Infos.size(), RL.CheckpointsMerged)
      << "chain selected checkpoints recovery never reached";
  for (size_t I = 0; I != Chain.Snapshots.size(); ++I) {
    EXPECT_EQ(rt::snapshotStateHash(Chain.Snapshots[I]),
              Chain.Infos[I].StateHash)
        << "checkpoint " << I << " fails its own hash";
  }
  if (!Chain.Snapshots.empty()) {
    // The checkpoint seekToCheckpoint restores really is restorable.
    auto Fresh = replay::LogReader::open(std::move(Damaged),
                                         replay::LogReader::Options());
    ASSERT_TRUE(Fresh.hasValue());
    auto Snap = Fresh->seekToCheckpoint();
    ASSERT_TRUE(Snap.hasValue()) << Snap.error().message();
    EXPECT_EQ(Snap->StateHash, Chain.Infos.back().StateHash);
  }
}

//===----------------------------------------------------------------------===//
// Compressed-stream corruption (support::lzDecompressEx)
//===----------------------------------------------------------------------===//

TEST(LogCompression, RoundTripAndTruncationOfEveryPrefix) {
  std::vector<uint8_t> Input;
  for (unsigned I = 0; I != 4096; ++I)
    Input.push_back(static_cast<uint8_t>((I * 7) & 0x3f)); // Compressible.
  auto Packed = lzCompress(Input);
  auto Out = lzDecompressEx(Packed);
  ASSERT_TRUE(Out.hasValue()) << Out.error().message();
  EXPECT_EQ(*Out, Input);

  for (size_t Len = 0; Len != Packed.size(); ++Len) {
    std::vector<uint8_t> Cut(Packed.begin(), Packed.begin() + Len);
    auto R = lzDecompressEx(Cut);
    EXPECT_FALSE(R.hasValue()) << "prefix length " << Len << " decoded";
  }
}

TEST(LogCompression, OversizedDeclaredSizeRejectedBeforeAllocation) {
  // A corrupt size prefix claiming 2^40 bytes must be refused up front,
  // not drive the allocator into the ground.
  std::vector<uint8_t> Evil;
  appendVarint(Evil, uint64_t(1) << 40);
  Evil.push_back(0); // Terminator, in case the size were honored.
  auto R = lzDecompressEx(Evil);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().message().find("exceeds limit"), std::string::npos)
      << R.error().message();

  // Same stream with an explicit tighter cap.
  std::vector<uint8_t> Big;
  appendVarint(Big, 1024);
  auto R2 = lzDecompressEx(Big, /*MaxOutput=*/16);
  ASSERT_FALSE(R2.hasValue());
  EXPECT_NE(R2.error().message().find("exceeds limit"), std::string::npos);
}

TEST(LogCompression, MalformedTokenStreamsAreRejected) {
  // Match distance reaching before the start of the output.
  {
    std::vector<uint8_t> S;
    appendVarint(S, 8);              // Declared size.
    appendVarint(S, 4);              // 4 literals.
    S.insert(S.end(), {1, 2, 3, 4});
    S.push_back(1);                  // Match of MinMatch bytes...
    appendVarint(S, 9);              // ...from before the stream start.
    auto R = lzDecompressEx(S);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().message().find("distance"), std::string::npos);
  }
  // Output disagreeing with the declared size.
  {
    std::vector<uint8_t> S;
    appendVarint(S, 5); // Claims 5 bytes...
    appendVarint(S, 4); // ...but carries 4.
    S.insert(S.end(), {1, 2, 3, 4});
    S.push_back(0);
    auto R = lzDecompressEx(S);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().message().find("size mismatch"), std::string::npos);
  }
  // Garbage after the terminator.
  {
    std::vector<uint8_t> S;
    appendVarint(S, 4);
    appendVarint(S, 4);
    S.insert(S.end(), {1, 2, 3, 4});
    S.push_back(0);
    S.push_back(0x55);
    auto R = lzDecompressEx(S);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().message().find("trailing"), std::string::npos);
  }
  // Literal run past the end of the compressed bytes.
  {
    std::vector<uint8_t> S;
    appendVarint(S, 64);
    appendVarint(S, 64); // 64 literals claimed, none present.
    auto R = lzDecompressEx(S);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().message().find("literal"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Workload matrix: streamed record + checkpointed resume on real workloads
//===----------------------------------------------------------------------===//

class WorkloadLogEngine
    : public ::testing::TestWithParam<workloads::WorkloadKind> {};

TEST_P(WorkloadLogEngine, StreamedRecordRecoversAndResumes) {
  core::PipelineConfig Config;
  Config.AnalysisJobs = 2;
  Config.SegmentBytes = 4096;
  Config.CheckpointEvery = 512;
  auto Built = workloads::buildPipelineEx(GetParam(), /*Workers=*/2, Config);
  ASSERT_TRUE(Built.hasValue()) << Built.error().message();
  auto P = Built.take();

  std::vector<uint8_t> Bytes;
  std::string Path = tmpPath(std::string("workload_") +
                             workloads::workloadInfo(GetParam()).Name);
  auto Rec = recordTo(*P, Path, 2012, Bytes);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;

  auto RL = recoverBytes(Bytes);
  ASSERT_TRUE(RL.Complete) << RL.Failure.message();
  expectLogsEqual(RL.Log, Rec.Log);

  auto Cold = P->replay(RL.Log);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  ASSERT_EQ(Cold.StateHash, Rec.StateHash);

  auto Reader = replay::LogReader::open(std::move(Bytes),
                                        replay::LogReader::Options());
  ASSERT_TRUE(Reader.hasValue()) << Reader.error().message();
  auto Snap = Reader->seekToCheckpoint();
  if (!Snap.hasValue()) {
    // Run shorter than one checkpoint interval: nothing to resume from.
    ASSERT_LT(Rec.Log.totalOrderedEvents() + Rec.Log.totalInputEvents(),
              Config.CheckpointEvery)
        << Snap.error().message();
    return;
  }
  auto Resumed = P->replayResumed(RL.Log, *Snap);
  ASSERT_TRUE(Resumed.Ok) << Resumed.Error;
  EXPECT_EQ(Resumed.StateHash, Cold.StateHash);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, WorkloadLogEngine,
    ::testing::Values(workloads::WorkloadKind::Aget,
                      workloads::WorkloadKind::Pfscan,
                      workloads::WorkloadKind::Ocean),
    [](const ::testing::TestParamInfo<workloads::WorkloadKind> &Info) {
      return workloads::workloadInfo(Info.param).Name;
    });
