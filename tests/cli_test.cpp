//===- tests/cli_test.cpp - Declarative CLI option table tests -------------===//
//
// Pins the property that motivated the table: --help is generated from
// the same data the parser interprets, so every registered option (and
// its --flag=VALUE spelling) appears in the help text, and the parser
// accepts exactly the declared forms.
//
//===----------------------------------------------------------------------===//

#include "core/Cli.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace chimera;
using namespace chimera::core;

namespace {

/// Runs parseCliOptions over \p Args as if they were argv[Start..].
support::Error parse(std::vector<std::string> Args, CliOptions &Opts,
                     const std::string &Command = "record") {
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>("chimera"));
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return parseCliOptions(static_cast<int>(Argv.size()), Argv.data(), 1,
                         Command, Opts);
}

} // namespace

TEST(CliHelp, EveryRegisteredOptionAppears) {
  const std::string Help = usageText();
  for (const OptionSpec &Spec : optionTable())
    EXPECT_NE(Help.find(Spec.Flag), std::string::npos) << Spec.Flag;
}

TEST(CliHelp, ValueTakingOptionsShowEqualsForm) {
  const std::string Help = usageText();
  for (const OptionSpec &Spec : optionTable()) {
    if (!Spec.ArgName)
      continue;
    // "--flag=ARG" for required values, "--flag[=ARG]" for optional.
    std::string Form = std::string(Spec.Flag) +
                       (Spec.ValueOptional ? "[=" : "=") + Spec.ArgName;
    EXPECT_NE(Help.find(Form), std::string::npos) << Form;
  }
}

TEST(CliHelp, EveryOptionHasHelpText) {
  for (const OptionSpec &Spec : optionTable()) {
    ASSERT_NE(Spec.Help, nullptr) << Spec.Flag;
    EXPECT_GT(std::string(Spec.Help).size(), 10u) << Spec.Flag;
  }
}

TEST(CliParse, EqualsAndSpaceFormsAgree) {
  CliOptions A, B;
  EXPECT_FALSE(bool(parse({"--seed=123", "--cores=2"}, A)));
  EXPECT_FALSE(bool(parse({"--seed", "123", "--cores", "2"}, B)));
  EXPECT_EQ(A.Seed, 123u);
  EXPECT_EQ(B.Seed, 123u);
  EXPECT_EQ(A.Cores, 2u);
  EXPECT_EQ(B.Cores, 2u);
}

TEST(CliParse, UnknownFlagIsAnError) {
  CliOptions O;
  support::Error E = parse({"--frobnicate"}, O);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("--frobnicate"), std::string::npos);
}

TEST(CliParse, MissingValueIsAnError) {
  CliOptions O;
  support::Error E = parse({"--seed"}, O);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("--seed"), std::string::npos);
}

TEST(CliParse, ValueOnFlagWithoutOneIsAnError) {
  CliOptions O;
  support::Error E = parse({"--race-stats=yes"}, O);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("takes no value"), std::string::npos);
}

TEST(CliParse, BadNumbersAreRejected) {
  CliOptions O;
  EXPECT_TRUE(bool(parse({"--seed=banana"}, O)));
  EXPECT_TRUE(bool(parse({"--cores=0"}, O)));
  EXPECT_TRUE(bool(parse({"--cores=99999999999999999999"}, O)));
}

TEST(CliParse, ReplayTakesOnePositionalLog) {
  CliOptions O;
  EXPECT_FALSE(bool(parse({"run.clog", "--seed=4"}, O, "replay")));
  EXPECT_EQ(O.LogPath, "run.clog");
  EXPECT_EQ(O.Seed, 4u);
  // Other commands reject positionals.
  CliOptions O2;
  EXPECT_TRUE(bool(parse({"run.clog"}, O2, "record")));
}

TEST(CliParse, MetricsDefaultsToJson) {
  CliOptions O;
  EXPECT_FALSE(bool(parse({"--metrics"}, O)));
  EXPECT_EQ(O.Metrics, MetricsFormat::Json);
}

TEST(CliParse, MetricsTableAndBadValues) {
  CliOptions O;
  EXPECT_FALSE(bool(parse({"--metrics=table"}, O)));
  EXPECT_EQ(O.Metrics, MetricsFormat::Table);
  CliOptions O2;
  EXPECT_TRUE(bool(parse({"--metrics=xml"}, O2)));
}

TEST(CliParse, OptionalValueNeverConsumesNextArg) {
  // `--metrics run.clog` must treat run.clog as a positional (here:
  // replay's log), not as the metrics format.
  CliOptions O;
  EXPECT_FALSE(bool(parse({"--metrics", "run.clog"}, O, "replay")));
  EXPECT_EQ(O.Metrics, MetricsFormat::Json);
  EXPECT_EQ(O.LogPath, "run.clog");
}

TEST(CliParse, ObsModeSpellings) {
  for (auto [Text, Mode] :
       {std::pair<const char *, obs::ObsMode>{"off", obs::ObsMode::Off},
        {"sampled", obs::ObsMode::Sampled},
        {"full", obs::ObsMode::Full}}) {
    CliOptions O;
    EXPECT_FALSE(bool(parse({std::string("--obs=") + Text}, O)));
    EXPECT_EQ(O.Obs, Mode) << Text;
    EXPECT_TRUE(O.ObsExplicit);
  }
  CliOptions Bad;
  EXPECT_TRUE(bool(parse({"--obs=loud"}, Bad)));
}

TEST(CliObsMode, MetricsAndTraceImplyFull) {
  CliOptions O;
  EXPECT_EQ(O.effectiveObsMode(), obs::ObsMode::Off);
  EXPECT_FALSE(bool(parse({"--metrics"}, O)));
  EXPECT_EQ(O.effectiveObsMode(), obs::ObsMode::Full);

  CliOptions T;
  EXPECT_FALSE(bool(parse({"--trace-out=t.json"}, T)));
  EXPECT_EQ(T.effectiveObsMode(), obs::ObsMode::Full);
  EXPECT_EQ(T.TraceOutPath, "t.json");
}

TEST(CliObsMode, ExplicitObsWinsOverImplication) {
  CliOptions O;
  EXPECT_FALSE(bool(parse({"--metrics", "--obs=sampled"}, O)));
  EXPECT_EQ(O.effectiveObsMode(), obs::ObsMode::Sampled);

  CliOptions Off;
  EXPECT_FALSE(bool(parse({"--metrics", "--obs=off"}, Off)));
  EXPECT_EQ(Off.effectiveObsMode(), obs::ObsMode::Off);
}

TEST(CliParse, BatchTakesManyPositionalsAndServiceFlags) {
  CliOptions O;
  EXPECT_FALSE(bool(parse({"b.mc", "--sessions=3", "c.mc", "--repeat=2",
                           "--cache=x.cart", "--deadline-ms=50"},
                          O, "batch")));
  EXPECT_EQ(O.Inputs, (std::vector<std::string>{"b.mc", "c.mc"}));
  EXPECT_EQ(O.Sessions, 3u);
  EXPECT_EQ(O.Repeat, 2u);
  EXPECT_EQ(O.CachePath, "x.cart");
  EXPECT_EQ(O.DeadlineMs, 50u);
  // Zero sessions/repeat are rejected; other commands still reject
  // extra positionals.
  CliOptions Bad;
  EXPECT_TRUE(bool(parse({"--sessions=0"}, Bad, "batch")));
  EXPECT_TRUE(bool(parse({"--repeat=0"}, Bad, "batch")));
  CliOptions NotBatch;
  EXPECT_TRUE(bool(parse({"b.mc"}, NotBatch, "record")));
}

TEST(CliHelp, DocumentsBatchAndExitCodes) {
  const std::string Help = usageText();
  EXPECT_NE(Help.find("batch"), std::string::npos);
  EXPECT_NE(Help.find("exit codes"), std::string::npos);
  EXPECT_NE(Help.find("usage error"), std::string::npos);
}

TEST(CliParse, PlannerAblationsAndHelpFlag) {
  CliOptions O;
  EXPECT_FALSE(bool(parse({"--naive", "--help"}, O)));
  EXPECT_FALSE(O.Planner.UseFunctionLocks);
  EXPECT_TRUE(O.Help);
}
