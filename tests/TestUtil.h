//===- tests/TestUtil.h - Shared gtest helpers ------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unwrap helpers bridging the Expected-returning entry points to
/// gtest: fail the current test (with the carried message) and return
/// null instead of propagating an Expected through every fixture.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_TESTS_TESTUTIL_H
#define CHIMERA_TESTS_TESTUTIL_H

#include "codegen/CodeGen.h"
#include "race/SummaryCache.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace chimera {
namespace test {

/// Compiles MiniC to IR; on failure the test fails and null is
/// returned (callers that can't proceed also check the pointer).
inline std::unique_ptr<ir::Module>
compileOrNull(const std::string &Source, const std::string &Name = "t") {
  auto M = compileMiniCEx(Source, Name);
  EXPECT_TRUE(M.hasValue()) << (M ? "" : M.error().message());
  return M ? M.take() : nullptr;
}

/// Builds a workload pipeline; fails the test and returns null on
/// error.
inline std::unique_ptr<core::ChimeraPipeline>
pipelineOrNull(workloads::WorkloadKind Kind, unsigned Workers) {
  auto P = workloads::buildPipelineEx(Kind, Workers);
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

/// Snapshot of a SummaryCache's counters under the "cache." prefix
/// (the registry read path that replaced SummaryCache::stats()).
inline obs::Snapshot cacheSnapshot(const race::SummaryCache &Cache) {
  obs::Registry Reg;
  Cache.publishTo(obs::Scope(&Reg, "cache"));
  return Reg.snapshot();
}

} // namespace test
} // namespace chimera

#endif // CHIMERA_TESTS_TESTUTIL_H
