//===- tests/interp_test.cpp - Sequential interpreter semantics ------------===//
//
// Single-threaded execution semantics: the MiniC program's outputs are
// checked against expected values, which exercises codegen and the
// interpreter together.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "runtime/Machine.h"

#include <gtest/gtest.h>

using namespace chimera;

namespace {

rt::ExecutionResult runSource(const std::string &Source,
                              uint64_t Seed = 1) {
    auto M = test::compileOrNull(Source, "t");
  if (!M)
    return {};
  rt::MachineOptions MO;
  MO.Seed = Seed;
  rt::Machine Machine(*M, MO);
  return Machine.run();
}

std::vector<uint64_t> outputsOf(const std::string &Source) {
  auto R = runSource(Source);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

} // namespace

TEST(Interp, ArithmeticBasics) {
  EXPECT_EQ(outputsOf("int main() { output(2 + 3 * 4); "
                      "output(10 - 7); output(9 / 2); output(9 % 2); "
                      "return 0; }"),
            (std::vector<uint64_t>{14, 3, 4, 1}));
}

TEST(Interp, SignedDivisionAndShift) {
  EXPECT_EQ(outputsOf("int main() { output(0 - (7 / 2)); "
                      "output((0 - 8) >> 1); output(1 << 10); return 0; }"),
            (std::vector<uint64_t>{static_cast<uint64_t>(-3),
                                   static_cast<uint64_t>(-4), 1024}));
}

TEST(Interp, BitwiseOps) {
  EXPECT_EQ(outputsOf("int main() { output(12 & 10); output(12 | 3); "
                      "output(12 ^ 10); return 0; }"),
            (std::vector<uint64_t>{8, 15, 6}));
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(outputsOf("int main() { output(1 < 2); output(2 <= 1); "
                      "output(3 > 2); output(2 >= 3); output(4 == 4); "
                      "output(4 != 4); return 0; }"),
            (std::vector<uint64_t>{1, 0, 1, 0, 1, 0}));
}

TEST(Interp, UnaryOps) {
  EXPECT_EQ(outputsOf("int main() { output(-5 + 6); output(!0); output(!7); "
                      "return 0; }"),
            (std::vector<uint64_t>{1, 1, 0}));
}

// Parameterized sweep: every binary operator against a table of operand
// pairs, compared with the host's semantics.
struct OpCase {
  const char *Spelling;
  int64_t A, B;
  int64_t Expected;
};

class BinaryOpSemantics : public ::testing::TestWithParam<OpCase> {};

TEST_P(BinaryOpSemantics, MatchesHost) {
  const OpCase &C = GetParam();
  std::string Src = "int main() { int a = " + std::to_string(C.A) +
                    "; int b = " + std::to_string(C.B) + "; output(a " +
                    C.Spelling + " b); return 0; }";
  auto Out = outputsOf(Src);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(static_cast<int64_t>(Out[0]), C.Expected) << Src;
}

INSTANTIATE_TEST_SUITE_P(
    Table, BinaryOpSemantics,
    ::testing::Values(
        OpCase{"+", 1000000007, 998244353, 1998244360},
        OpCase{"+", -5, 3, -2}, OpCase{"-", 3, 10, -7},
        OpCase{"*", -7, 6, -42}, OpCase{"/", -7, 2, -3},
        OpCase{"/", 7, -2, -3}, OpCase{"%", -7, 2, -1},
        OpCase{"%", 7, 3, 1}, OpCase{"&", 0xf0f0, 0xff00, 0xf000},
        OpCase{"|", 0x0f, 0xf0, 0xff}, OpCase{"^", 0xff, 0x0f, 0xf0},
        OpCase{"<<", 3, 4, 48}, OpCase{">>", -16, 2, -4},
        OpCase{"<", -1, 0, 1}, OpCase{"<=", 5, 5, 1},
        OpCase{">", -1, -2, 1}, OpCase{">=", -3, -2, 0},
        OpCase{"==", 42, 42, 1}, OpCase{"!=", 42, 43, 1}));

TEST(Interp, ShortCircuitSkipsSideEffects) {
  // The `g = 1` branch of && must not run when the left side is false.
  EXPECT_EQ(outputsOf("int g;\n"
                      "int set() { g = 1; return 1; }\n"
                      "int main() { int x = 0 && set(); output(g); "
                      "output(x); x = 1 || set(); output(g); output(x); "
                      "return 0; }"),
            (std::vector<uint64_t>{0, 0, 0, 1}));
}

TEST(Interp, WhileAndForLoops) {
  EXPECT_EQ(outputsOf("int main() { int s = 0; int i = 0; "
                      "while (i < 5) { s += i; i++; } output(s); "
                      "int t = 0; for (i = 10; i > 0; i -= 2) { t++; } "
                      "output(t); return 0; }"),
            (std::vector<uint64_t>{10, 5}));
}

TEST(Interp, BreakAndContinue) {
  EXPECT_EQ(outputsOf("int main() { int s = 0; int i; "
                      "for (i = 0; i < 10; i++) { "
                      "if (i == 7) { break; } "
                      "if (i % 2 == 0) { continue; } s += i; } "
                      "output(s); return 0; }"),
            (std::vector<uint64_t>{1 + 3 + 5}));
}

TEST(Interp, NestedLoops) {
  EXPECT_EQ(outputsOf("int main() { int s = 0; int i; int j; "
                      "for (i = 0; i < 4; i++) { "
                      "for (j = 0; j < i; j++) { s++; } } "
                      "output(s); return 0; }"),
            (std::vector<uint64_t>{6}));
}

TEST(Interp, GlobalsAndArrays) {
  EXPECT_EQ(outputsOf("int g = 5;\nint a[4];\n"
                      "int main() { a[0] = g; a[1] = a[0] * 2; "
                      "a[2] = a[1] + a[0]; g = a[2]; output(g); "
                      "return 0; }"),
            (std::vector<uint64_t>{15}));
}

TEST(Interp, GlobalInitializers) {
  EXPECT_EQ(outputsOf("int g = -9;\nint a[3];\n"
                      "int main() { output(g); output(a[2]); return 0; }"),
            (std::vector<uint64_t>{static_cast<uint64_t>(-9), 0}));
}

TEST(Interp, PointersAndAddressOf) {
  EXPECT_EQ(outputsOf("int a[8];\n"
                      "int main() { int* p = &a[2]; p[0] = 7; p[1] = 8; "
                      "int* q = a + 3; output(a[2]); output(q[0]); "
                      "q = q - 1; output(q[0]); return 0; }"),
            (std::vector<uint64_t>{7, 8, 7}));
}

TEST(Interp, PointerParamsAcrossCalls) {
  EXPECT_EQ(outputsOf("int a[4];\n"
                      "void fill(int* p, int n, int v) { int i; "
                      "for (i = 0; i < n; i++) { p[i] = v + i; } }\n"
                      "int main() { fill(&a[1], 3, 10); output(a[0]); "
                      "output(a[1]); output(a[3]); return 0; }"),
            (std::vector<uint64_t>{0, 10, 12}));
}

TEST(Interp, HeapAllocation) {
  EXPECT_EQ(outputsOf("int main() { int* p = alloc(4); int* q = alloc(4); "
                      "p[0] = 1; q[0] = 2; output(p[0]); output(q[0]); "
                      "output(p == q); return 0; }"),
            (std::vector<uint64_t>{1, 2, 0}));
}

TEST(Interp, RecursionFactorial) {
  EXPECT_EQ(outputsOf("int fact(int n) { if (n <= 1) { return 1; } "
                      "return n * fact(n - 1); }\n"
                      "int main() { output(fact(10)); return 0; }"),
            (std::vector<uint64_t>{3628800}));
}

TEST(Interp, MutualRecursion) {
  // Note: no forward declarations needed — name resolution sees every
  // function in the translation unit.
  EXPECT_EQ(outputsOf("int iseven(int n) { if (n == 0) { return 1; } "
                      "return isodd(n - 1); }\n"
                      "int isodd(int n) { if (n == 0) { return 0; } "
                      "return iseven(n - 1); }\n"
                      "int main() { output(iseven(10)); output(isodd(7)); "
                      "return 0; }"),
            (std::vector<uint64_t>{1, 1}));
}

TEST(Interp, ImplicitReturnZero) {
  EXPECT_EQ(outputsOf("int f() { int x = 3; x++; }\n"
                      "int main() { output(f()); return 0; }"),
            (std::vector<uint64_t>{0}));
}

TEST(Interp, DivisionByZeroFaults) {
  auto R = runSource("int main() { int z = 0; return 5 / z; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Interp, RemainderByZeroFaults) {
  auto R = runSource("int main() { int z = 0; return 5 % z; }");
  EXPECT_FALSE(R.Ok);
}

TEST(Interp, WildAddressFaults) {
  auto R = runSource("int main() { int* p = alloc(1); p = p + 100000; "
                     "p[0] = 1; return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid store"), std::string::npos);
}

TEST(Interp, NullDereferenceFaults) {
  auto R = runSource("int z;\nint main() { int* p = &z; p = p - 99999; "
                     "return p[0]; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid load"), std::string::npos);
}

TEST(Interp, InputsAreSeedDeterministic) {
  const char *Src = "int main() { output(input()); output(input()); "
                    "return 0; }";
  auto A = runSource(Src, 5);
  auto B = runSource(Src, 5);
  auto C = runSource(Src, 6);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_NE(A.Output, C.Output);
}

TEST(Interp, StatsCountInstructionsAndMemOps) {
  auto R = runSource("int a[4];\nint main() { a[0] = 1; a[1] = a[0]; "
                     "return 0; }");
  ASSERT_TRUE(R.Ok);
  // Two stores and one load.
  EXPECT_EQ(R.Stats.MemOps, 3u);
  EXPECT_GT(R.Stats.Instructions, 3u);
  EXPECT_GT(R.Stats.MakespanCycles, 0u);
}

TEST(Interp, OutputOrderPreservedSingleThread) {
  std::vector<uint64_t> Expected;
  for (int I = 0; I != 20; ++I)
    Expected.push_back(static_cast<uint64_t>(I * I));
  EXPECT_EQ(outputsOf("int main() { int i; for (i = 0; i < 20; i++) { "
                      "output(i * i); } return 0; }"),
            Expected);
}
