//===- tests/parser_test.cpp - MiniC parser tests --------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace chimera;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  DiagEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  auto Prog = P.parseProgram();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

bool parseFails(const std::string &Source) {
  DiagEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  return Diags.hasErrors();
}

} // namespace

TEST(Parser, GlobalDeclarations) {
  auto Prog = parseOk("int g;\nint h = 7;\nint neg = -3;\nint a[100];\n"
                      "mutex m;\nbarrier b(4);\ncond c;\n");
  ASSERT_EQ(Prog->Globals.size(), 4u);
  EXPECT_EQ(Prog->Globals[0].Name, "g");
  EXPECT_EQ(Prog->Globals[1].Init, 7);
  EXPECT_EQ(Prog->Globals[2].Init, -3);
  EXPECT_EQ(Prog->Globals[3].ArraySize, 100u);
  ASSERT_EQ(Prog->Syncs.size(), 3u);
  EXPECT_EQ(Prog->Syncs[0].Kind, SyncObjectKind::Mutex);
  EXPECT_EQ(Prog->Syncs[1].Kind, SyncObjectKind::Barrier);
  EXPECT_EQ(Prog->Syncs[2].Kind, SyncObjectKind::Cond);
}

TEST(Parser, FunctionWithParams) {
  auto Prog = parseOk("int f(int a, int* p) { return a; }");
  ASSERT_EQ(Prog->Functions.size(), 1u);
  const FunctionDecl &F = *Prog->Functions[0];
  EXPECT_EQ(F.Name, "f");
  EXPECT_FALSE(F.ReturnsVoid);
  ASSERT_EQ(F.Params.size(), 2u);
  EXPECT_FALSE(F.Params[0].IsPtr);
  EXPECT_TRUE(F.Params[1].IsPtr);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  auto Prog = parseOk("void f() { int x = 1 + 2 * 3; }");
  const auto *Decl =
      cast<DeclStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  const auto *Add = cast<BinaryExpr>(Decl->Init.get());
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  const auto *Mul = cast<BinaryExpr>(Add->RHS.get());
  EXPECT_EQ(Mul->Op, BinaryOp::Mul);
}

TEST(Parser, LeftAssociativity) {
  auto Prog = parseOk("void f() { int x = 10 - 3 - 2; }");
  const auto *Decl =
      cast<DeclStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  // (10 - 3) - 2: outer RHS is the literal 2.
  const auto *Outer = cast<BinaryExpr>(Decl->Init.get());
  EXPECT_EQ(cast<IntLitExpr>(Outer->RHS.get())->Value, 2);
  EXPECT_TRUE(isa<BinaryExpr>(Outer->LHS.get()));
}

TEST(Parser, ComparisonBindsLooserThanShift) {
  auto Prog = parseOk("void f() { int x = 1 << 2 < 3; }");
  const auto *Decl =
      cast<DeclStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  EXPECT_EQ(cast<BinaryExpr>(Decl->Init.get())->Op, BinaryOp::Lt);
}

TEST(Parser, IncrementDesugarsToCompoundAssign) {
  auto Prog = parseOk("void f() { int x = 0; x++; x -= 2; }");
  const auto *Inc =
      cast<AssignStmt>(Prog->Functions[0]->Body->Stmts[1].get());
  EXPECT_EQ(Inc->Op, AssignOp::Add);
  EXPECT_EQ(cast<IntLitExpr>(Inc->Value.get())->Value, 1);
  const auto *Dec =
      cast<AssignStmt>(Prog->Functions[0]->Body->Stmts[2].get());
  EXPECT_EQ(Dec->Op, AssignOp::Sub);
}

TEST(Parser, ForLoopPieces) {
  auto Prog =
      parseOk("void f() { int i; for (i = 0; i < 10; i++) { } }");
  const auto *For = cast<ForStmt>(Prog->Functions[0]->Body->Stmts[1].get());
  EXPECT_NE(For->Init, nullptr);
  EXPECT_NE(For->Cond, nullptr);
  EXPECT_NE(For->Step, nullptr);
}

TEST(Parser, ForLoopEmptyPieces) {
  auto Prog = parseOk("void f() { for (;;) { break; } }");
  const auto *For = cast<ForStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  EXPECT_EQ(For->Init, nullptr);
  EXPECT_EQ(For->Cond, nullptr);
  EXPECT_EQ(For->Step, nullptr);
}

TEST(Parser, IfElseChain) {
  auto Prog = parseOk(
      "void f(int x) { if (x) { } else if (x > 1) { } else { } }");
  const auto *If = cast<IfStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  ASSERT_NE(If->Else, nullptr);
  EXPECT_TRUE(isa<IfStmt>(If->Else.get()));
}

TEST(Parser, AddressOfForms) {
  auto Prog = parseOk("int a[4];\nvoid f() { int* p = &a[2]; int* q = &a; }");
  const auto *P = cast<DeclStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  const auto *Addr = cast<AddrOfExpr>(P->Init.get());
  EXPECT_EQ(Addr->Name, "a");
  EXPECT_NE(Addr->Index, nullptr);
  const auto *Q = cast<DeclStmt>(Prog->Functions[0]->Body->Stmts[1].get());
  EXPECT_EQ(cast<AddrOfExpr>(Q->Init.get())->Index, nullptr);
}

TEST(Parser, NestedIndexing) {
  auto Prog = parseOk("int a[4];\nvoid f(int* p) { int x = p[a[1]]; }");
  const auto *Decl =
      cast<DeclStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  const auto *Outer = cast<IndexExpr>(Decl->Init.get());
  EXPECT_TRUE(isa<IndexExpr>(Outer->Index.get()));
}

TEST(Parser, CallsWithArguments) {
  auto Prog = parseOk("int g(int a, int b) { return a + b; }\n"
                      "void f() { g(1, 2); int t = spawn(g, 1, 2); }");
  const auto *Stmt = cast<ExprStmt>(Prog->Functions[1]->Body->Stmts[0].get());
  EXPECT_EQ(cast<CallExpr>(Stmt->E.get())->Args.size(), 2u);
}

TEST(Parser, ShortCircuitOperators) {
  auto Prog = parseOk("void f(int a, int b) { if (a && b || !a) { } }");
  const auto *If = cast<IfStmt>(Prog->Functions[0]->Body->Stmts[0].get());
  EXPECT_EQ(cast<BinaryExpr>(If->Cond.get())->Op, BinaryOp::LOr);
}

TEST(Parser, ErrorMissingSemicolon) {
  EXPECT_TRUE(parseFails("int g\nvoid f() { }"));
}

TEST(Parser, ErrorBadArraySize) {
  EXPECT_TRUE(parseFails("int a[0];"));
  EXPECT_TRUE(parseFails("int a[x];"));
}

TEST(Parser, ErrorVoidGlobal) {
  EXPECT_TRUE(parseFails("void g;"));
}

TEST(Parser, ErrorUnclosedBrace) {
  EXPECT_TRUE(parseFails("void f() { if (1) {"));
}

TEST(Parser, ErrorGarbageTopLevel) {
  EXPECT_TRUE(parseFails("+++"));
}

TEST(Parser, ErrorMissingExpr) {
  EXPECT_TRUE(parseFails("void f() { int x = ; }"));
}
