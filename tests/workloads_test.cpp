//===- tests/workloads_test.cpp - The nine benchmark programs --------------===//
//
// Integration + property tests over the full suite: every workload
// compiles, verifies, runs, records and replays deterministically, and —
// the paper's central invariant — is dynamically race-free once
// instrumented, with weak-locks treated as synchronization.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ir/Verifier.h"
#include "race/DynamicDetector.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::workloads;

namespace {

std::string nameOf(WorkloadKind Kind) { return workloadInfo(Kind).Name; }

} // namespace

//===----------------------------------------------------------------------===//
// Per-workload structural checks (parameterized over the suite).
//===----------------------------------------------------------------------===//

class WorkloadSuite : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadSuite, CompilesAndVerifies) {
    auto P = test::pipelineOrNull(GetParam(), 4);
  EXPECT_TRUE(ir::verifyModule(P->originalModule()).empty());
}

TEST_P(WorkloadSuite, ProfileAndEvalShapesMatch) {
  // The profile environment differs only in constants; create
  // enforces matching instruction counts, so building is the assertion.
    auto P = test::pipelineOrNull(GetParam(), 2);
}

TEST_P(WorkloadSuite, NativeRunsToCompletion) {
    auto P = test::pipelineOrNull(GetParam(), 4);
  auto R = P->runOriginalNative(11);
  ASSERT_TRUE(R.Ok) << nameOf(GetParam()) << ": " << R.Error;
  EXPECT_FALSE(R.Output.empty());
  EXPECT_GT(R.Stats.SpawnedThreads, 1u);
}

TEST_P(WorkloadSuite, StaticRacesAreFound) {
    auto P = test::pipelineOrNull(GetParam(), 4);
  // Every workload deliberately contains potential races (true or
  // false); RELAY must find them or the instrumentation story is moot.
  EXPECT_FALSE(P->raceReport().Pairs.empty()) << nameOf(GetParam());
}

TEST_P(WorkloadSuite, InstrumentedModuleVerifies) {
    auto P = test::pipelineOrNull(GetParam(), 4);
  const ir::Module &I = P->instrumentedModule();
  EXPECT_TRUE(ir::verifyModule(I).empty());
  EXPECT_FALSE(I.WeakLocks.empty()) << nameOf(GetParam());
}

TEST_P(WorkloadSuite, RecordReplayIsDeterministic) {
    auto P = test::pipelineOrNull(GetParam(), 4);
  for (uint64_t Seed : {7ull, 42ull}) {
    auto Out = P->recordAndReplay(Seed);
    ASSERT_TRUE(Out.Record.Ok)
        << nameOf(GetParam()) << " record: " << Out.Record.Error;
    ASSERT_TRUE(Out.Replay.Ok)
        << nameOf(GetParam()) << " replay: " << Out.Replay.Error;
    EXPECT_TRUE(Out.Deterministic) << nameOf(GetParam());
  }
}

TEST_P(WorkloadSuite, InstrumentedExecutionIsDynamicallyRaceFree) {
  // Paper §2.4: the transformed program is data-race-free under the new
  // synchronization operations.
    auto P = test::pipelineOrNull(GetParam(), 4);
  EXPECT_EQ(P->dynamicRaceCount(13), 0u) << nameOf(GetParam());
}

TEST_P(WorkloadSuite, RecordOverheadIsBounded) {
  // Sanity envelope, not a benchmark: with all optimizations the record
  // run must stay within ~8x of native (the paper's worst case is 2.4x).
    auto P = test::pipelineOrNull(GetParam(), 4);
  auto Native = P->runOriginalNative(5);
  auto Rec = P->record(5);
  ASSERT_TRUE(Native.Ok && Rec.Ok) << Native.Error << Rec.Error;
  EXPECT_LT(Rec.Stats.MakespanCycles, Native.Stats.MakespanCycles * 8)
      << nameOf(GetParam());
}

TEST_P(WorkloadSuite, NoRevocationsUnderDefaultTimeout) {
  // Matches the paper's observation (§7.1): no weak-lock timeouts in any
  // benchmark under the default threshold.
    auto P = test::pipelineOrNull(GetParam(), 4);
  auto Rec = P->record(3);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  EXPECT_EQ(Rec.Stats.Revocations, 0u) << nameOf(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadKind> &Info) {
      return std::string(workloadInfo(Info.param).Name);
    });

//===----------------------------------------------------------------------===//
// Suite-level expectations
//===----------------------------------------------------------------------===//

TEST(Workloads, SuiteHasNineMembers) {
  EXPECT_EQ(allWorkloads().size(), 9u);
}

TEST(Workloads, CategoriesMatchTable1) {
  unsigned Desktop = 0, Server = 0, Scientific = 0;
  for (WorkloadKind K : allWorkloads()) {
    std::string Cat = workloadInfo(K).Category;
    Desktop += Cat == "desktop";
    Server += Cat == "server";
    Scientific += Cat == "scientific";
  }
  EXPECT_EQ(Desktop, 3u);
  EXPECT_EQ(Server, 2u);
  EXPECT_EQ(Scientific, 4u);
}

TEST(Workloads, IoBoundWorkloadsHideRecordingCost) {
  // aget/knot: record overhead within 10% (paper: ~1-4%).
  for (WorkloadKind K : {WorkloadKind::Aget, WorkloadKind::Knot}) {
        auto P = test::pipelineOrNull(K, 4);
    auto Native = P->runOriginalNative(21);
    auto Rec = P->record(21);
    ASSERT_TRUE(Native.Ok && Rec.Ok);
    double Overhead = double(Rec.Stats.MakespanCycles) /
                      double(Native.Stats.MakespanCycles);
    EXPECT_LT(Overhead, 1.10) << workloadInfo(K).Name;
  }
}

TEST(Workloads, IoBoundWorkloadsReplayFaster) {
  // Paper §7.2: network applications replay much faster than recording
  // because inputs are fed without waiting.
    auto P = test::pipelineOrNull(WorkloadKind::Aget, 4);
  auto Out = P->recordAndReplay(19);
  ASSERT_TRUE(Out.Deterministic);
  EXPECT_LT(Out.Replay.Stats.MakespanCycles,
            Out.Record.Stats.MakespanCycles / 5);
}

TEST(Workloads, RadixUsesBothLoopLockKinds) {
  // Figure 4: ranged loop-locks for the zeroing loop, unranged for the
  // key-dependent histogram loop.
    auto P = test::pipelineOrNull(WorkloadKind::Radix, 4);
  const auto &Plan = P->plan();
  EXPECT_GT(Plan.SidesLoopRanged, 0u);
  EXPECT_GT(Plan.SidesLoopUnranged, 0u);
}

TEST(Workloads, PfscanAndWaterUseFunctionLocks) {
  for (WorkloadKind K : {WorkloadKind::Pfscan, WorkloadKind::Water}) {
        auto P = test::pipelineOrNull(K, 4);
    EXPECT_GT(P->plan().PairsFunctionCovered, 0u) << workloadInfo(K).Name;
  }
}

TEST(Workloads, ApacheUsesRangedLoopLocks) {
  // The memset story: apache's hot scratch-clearing loop is rescued by
  // accurate symbolic bounds.
    auto P = test::pipelineOrNull(WorkloadKind::Apache, 4);
  EXPECT_GT(P->plan().SidesLoopRanged, 0u);
}

TEST(Workloads, ScientificSuiteHasHigherOverheadThanServers) {
  auto overheadOf = [](WorkloadKind K) {
        auto P = test::pipelineOrNull(K, 4);
    auto Native = P->runOriginalNative(33);
    auto Rec = P->record(33);
    EXPECT_TRUE(Native.Ok && Rec.Ok);
    return double(Rec.Stats.MakespanCycles) /
           double(Native.Stats.MakespanCycles);
  };
  double Ocean = overheadOf(WorkloadKind::Ocean);
  double Knot = overheadOf(WorkloadKind::Knot);
  EXPECT_GT(Ocean, Knot);
  EXPECT_GT(Ocean, 1.2);
}

TEST(Workloads, LineCountsAreReported) {
  for (WorkloadKind K : allWorkloads())
    EXPECT_GT(workloadLineCount(K), 40u) << workloadInfo(K).Name;
}
