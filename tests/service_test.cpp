//===- tests/service_test.cpp - Service layer: cache + sessions ------------===//
//
// Pins the service-layer contract (ISSUE 9):
//
//  * CART1 round trips byte-identically, and a warm start from a
//    persisted image yields plans byte-identical to recomputation.
//  * The corruption fault matrix: flipping any single bit or truncating
//    the image at any length yields a typed error and/or a clean prefix
//    — a damaged artifact is never surfaced, only recomputed.
//  * SessionManager: K concurrent sessions of one request are
//    bit-identical; a failing session leaves siblings untouched;
//    cancellation and deadlines land at stage boundaries; admission is
//    bounded; drain/shutdown is graceful.
//  * Request-API equivalences: explicit-vs-implied profile source,
//    Tag threading through error contexts.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "race/SummaryCache.h"
#include "replay/LogCodec.h"
#include "service/ArtifactCache.h"
#include "service/SessionManager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace chimera;
using namespace chimera::service;

namespace {

const char *Src =
    "int c;\nint a[32];\nint tids[2];\n"
    "void w(int* base, int n) { int i; for (i = 0; i < n; i++) { "
    "base[i] = i; c = c + 1; } }\n"
    "int main() { tids[0] = spawn(w, &a[0], 16); "
    "tids[1] = spawn(w, &a[16], 16); join(tids[0]); join(tids[1]); "
    "output(c); return 0; }";

core::PipelineConfig config() {
  core::PipelineConfig C;
  C.Name = "svc";
  C.ProfileRuns = 4;
  return C;
}

core::PipelineRequest request(std::string Tag, const char *Source = Src) {
  core::PipelineRequest R;
  R.Eval = Source;
  R.Config = config();
  R.Tag = std::move(Tag);
  return R;
}

/// Builds one pipeline over Src with \p Cache attached and forces the
/// plan stage, so the cache holds the plan artifact; then persists the
/// process-global RELAY summaries too.
std::unique_ptr<core::ChimeraPipeline> populate(ArtifactCache &Cache) {
  race::SummaryCache::global().clear();
  core::PipelineConfig C = config();
  C.Artifacts = &Cache;
  auto P = core::ChimeraPipeline::create({.Eval = Src, .Config = C});
  EXPECT_TRUE(P) << (P ? "" : P.error().message());
  if (!P)
    return nullptr;
  (*P)->plan();
  exportSummaries(race::SummaryCache::global(), Cache);
  return P.take();
}

/// Every entry currently in \p Cache, keyed by (kind, key).
std::map<std::pair<uint16_t, uint64_t>, std::vector<uint8_t>>
entriesOf(const ArtifactCache &Cache) {
  std::map<std::pair<uint16_t, uint64_t>, std::vector<uint8_t>> Out;
  for (ArtifactKind K : {ArtifactKind::Summary, ArtifactKind::Plan})
    Cache.forEach(K, [&](uint64_t Key, const std::vector<uint8_t> &Bytes) {
      Out[{static_cast<uint16_t>(K), Key}] = Bytes;
    });
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// CART1 persistence
//===----------------------------------------------------------------------===//

TEST(ArtifactCacheTest, SerializeLoadRoundTripIsByteIdentical) {
  ArtifactCache Cache;
  auto P = populate(Cache);
  ASSERT_NE(P, nullptr);
  ASSERT_GT(Cache.entryCount(), 1u); // Summaries + the plan.

  std::vector<uint8_t> Image = Cache.serialize();
  ArtifactCache Loaded;
  auto N = Loaded.loadBytes(Image);
  ASSERT_TRUE(N) << N.error().message();
  EXPECT_EQ(*N, Cache.entryCount());
  EXPECT_EQ(Loaded.serialize(), Image);
  EXPECT_EQ(entriesOf(Loaded), entriesOf(Cache));
}

TEST(ArtifactCacheTest, SaveFileLoadFileRoundTrip) {
  ArtifactCache Cache;
  auto P = populate(Cache);
  ASSERT_NE(P, nullptr);

  const std::string Path = "/tmp/chimera_service_test.cart";
  std::remove(Path.c_str());
  ArtifactCache Empty;
  auto Missing = Empty.loadFile(Path);
  ASSERT_TRUE(Missing) << Missing.error().message();
  EXPECT_EQ(*Missing, 0u); // Missing file = cold start, not an error.

  ASSERT_FALSE(bool(Cache.saveFile(Path)));
  ArtifactCache Loaded;
  auto N = Loaded.loadFile(Path);
  ASSERT_TRUE(N) << N.error().message();
  EXPECT_EQ(*N, Cache.entryCount());
  EXPECT_EQ(Loaded.serialize(), Cache.serialize());
  std::remove(Path.c_str());
}

TEST(ArtifactCacheTest, CodecsRoundTripRealArtifacts) {
  ArtifactCache Cache;
  auto P = populate(Cache);
  ASSERT_NE(P, nullptr);

  // Plan: decode(encode(plan)) re-encodes to the same bytes.
  std::vector<uint8_t> PlanBytes;
  encodePlan(P->plan(), PlanBytes);
  replay::ByteCursor C(PlanBytes);
  instrument::InstrumentationPlan Decoded;
  ASSERT_TRUE(decodePlan(C, Decoded));
  EXPECT_TRUE(C.atEnd());
  std::vector<uint8_t> Again;
  encodePlan(Decoded, Again);
  EXPECT_EQ(Again, PlanBytes);
  EXPECT_EQ(instrument::planFingerprint(Decoded),
            instrument::planFingerprint(P->plan()));

  // Summaries: every persisted summary survives a round trip.
  unsigned Checked = 0;
  Cache.forEach(ArtifactKind::Summary,
                [&](uint64_t, const std::vector<uint8_t> &Bytes) {
                  replay::ByteCursor SC(Bytes);
                  race::FunctionSummary S;
                  ASSERT_TRUE(decodeSummary(SC, S));
                  EXPECT_TRUE(SC.atEnd());
                  std::vector<uint8_t> Re;
                  encodeSummary(S, Re);
                  EXPECT_EQ(Re, Bytes);
                  ++Checked;
                });
  EXPECT_GT(Checked, 0u);
}

TEST(ArtifactCacheTest, WarmStartIsByteIdenticalToRecompute) {
  // Cold: compute everything, persist.
  ArtifactCache Cold;
  auto P1 = populate(Cold);
  ASSERT_NE(P1, nullptr);
  std::vector<uint8_t> ColdPlan;
  encodePlan(P1->plan(), ColdPlan);
  rt::ExecutionResult Rec1 = P1->record(7);
  ASSERT_TRUE(Rec1.Ok) << Rec1.Error;
  std::vector<uint8_t> Image = Cold.serialize();

  // Warm: fresh process state (cleared summary cache), load the image,
  // rebuild the same request.
  race::SummaryCache::global().clear();
  ArtifactCache Warm;
  auto N = Warm.loadBytes(Image);
  ASSERT_TRUE(N) << N.error().message();
  importSummaries(Warm, race::SummaryCache::global());
  core::PipelineConfig C = config();
  C.Artifacts = &Warm;
  auto P2 = core::ChimeraPipeline::create({.Eval = Src, .Config = C});
  ASSERT_TRUE(P2) << P2.error().message();

  std::vector<uint8_t> WarmPlan;
  encodePlan((*P2)->plan(), WarmPlan);
  EXPECT_EQ(WarmPlan, ColdPlan);

  // The hit actually came from the cache, and executing from the cached
  // plan is bit-identical to the cold run.
  obs::Registry Reg;
  Warm.publishTo(obs::Scope(&Reg, "c"));
  EXPECT_GE(Reg.snapshot().value("c.hits", 0), 1);
  rt::ExecutionResult Rec2 = (*P2)->record(7);
  ASSERT_TRUE(Rec2.Ok) << Rec2.Error;
  EXPECT_EQ(Rec2.StateHash, Rec1.StateHash);
  EXPECT_EQ(replay::encodeLog(Rec2.Log), replay::encodeLog(Rec1.Log));

  // Re-persisting after the warm run reproduces the image byte for
  // byte (first-writer-wins + canonical encodings).
  exportSummaries(race::SummaryCache::global(), Warm);
  EXPECT_EQ(Warm.serialize(), Image);
}

//===----------------------------------------------------------------------===//
// Corruption fault matrix
//===----------------------------------------------------------------------===//

TEST(ArtifactCacheFaultMatrix, EveryBitFlipIsDetected) {
  ArtifactCache Cache;
  auto P = populate(Cache);
  ASSERT_NE(P, nullptr);
  const std::vector<uint8_t> Image = Cache.serialize();
  const auto Original = entriesOf(Cache);

  for (size_t Byte = 0; Byte < Image.size(); ++Byte) {
    std::vector<uint8_t> Corrupt = Image;
    Corrupt[Byte] ^= 1u << (Byte % 8);
    ArtifactCache Fresh;
    auto R = Fresh.loadBytes(Corrupt);
    // Every field is covered by the header checks, the entry-header
    // CRC, or the payload CRC, so a single flipped bit is always a
    // typed error — and whatever prefix loaded is byte-exact.
    EXPECT_FALSE(bool(R)) << "undetected flip at byte " << Byte;
    for (const auto &[Key, Bytes] : entriesOf(Fresh)) {
      auto It = Original.find(Key);
      ASSERT_NE(It, Original.end()) << "wrong artifact at byte " << Byte;
      EXPECT_EQ(Bytes, It->second) << "wrong artifact at byte " << Byte;
    }
  }
}

TEST(ArtifactCacheFaultMatrix, EveryTruncationIsErrorOrCleanPrefix) {
  ArtifactCache Cache;
  auto P = populate(Cache);
  ASSERT_NE(P, nullptr);
  const std::vector<uint8_t> Image = Cache.serialize();
  const auto Original = entriesOf(Cache);

  for (size_t Len = 0; Len < Image.size(); ++Len) {
    std::vector<uint8_t> Cut(Image.begin(), Image.begin() + Len);
    ArtifactCache Fresh;
    auto R = Fresh.loadBytes(Cut);
    if (R) {
      // Truncation on an entry boundary is a valid shorter file; it
      // must hold strictly fewer entries, all byte-exact.
      EXPECT_LT(*R, Original.size()) << "truncation at " << Len;
    }
    for (const auto &[Key, Bytes] : entriesOf(Fresh)) {
      auto It = Original.find(Key);
      ASSERT_NE(It, Original.end()) << "wrong artifact at length " << Len;
      EXPECT_EQ(Bytes, It->second) << "wrong artifact at length " << Len;
    }
  }
}

TEST(ArtifactCacheFaultMatrix, ErrorsNameEntryAndOffset) {
  ArtifactCache Cache;
  auto P = populate(Cache);
  ASSERT_NE(P, nullptr);
  std::vector<uint8_t> Image = Cache.serialize();
  Image[CacheHeaderBytes + 6] ^= 0x40; // Inside entry 0's header.
  ArtifactCache Fresh;
  auto R = Fresh.loadBytes(Image);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("artifact cache entry 0"),
            std::string::npos)
      << R.error().message();
  EXPECT_NE(R.error().message().find("offset"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// SessionManager
//===----------------------------------------------------------------------===//

TEST(SessionManagerTest, ConcurrentSessionsOfOneRequestAreBitIdentical) {
  race::SummaryCache::global().clear();
  ArtifactCache Cache;
  obs::Registry Metrics;
  SessionManager::Options MO;
  MO.Concurrency = 4;
  MO.Artifacts = &Cache;
  MO.Metrics = &Metrics;
  SessionManager M(MO);

  const unsigned K = 4;
  for (unsigned I = 0; I < K; ++I)
    ASSERT_TRUE(bool(M.submit(request("same"))));
  std::vector<SessionResult> All = M.drainAll();
  ASSERT_EQ(All.size(), K);
  for (const SessionResult &R : All) {
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.Deterministic);
    EXPECT_EQ(R.PlanFingerprint, All[0].PlanFingerprint);
    EXPECT_EQ(R.RecordStateHash, All[0].RecordStateHash);
    EXPECT_EQ(R.ReplayStateHash, All[0].ReplayStateHash);
    EXPECT_EQ(R.LogBytes, All[0].LogBytes);
  }
  obs::Snapshot Snap = Metrics.snapshot();
  EXPECT_EQ(Snap.value("service.submitted", 0), K);
  EXPECT_EQ(Snap.value("service.completed", 0), K);
  EXPECT_EQ(Snap.value("service.in_flight", -1), 0);
}

TEST(SessionManagerTest, FailingSessionLeavesSiblingsUntouched) {
  race::SummaryCache::global().clear();
  // Solo baseline for the good request.
  SessionResult Solo;
  {
    SessionManager M(SessionManager::Options{});
    auto Id = M.submit(request("good"));
    ASSERT_TRUE(bool(Id));
    Solo = M.wait(*Id);
    ASSERT_TRUE(Solo.Ok) << Solo.Error;
  }

  SessionManager M(SessionManager::Options{});
  auto G1 = M.submit(request("good"));
  auto Bad = M.submit(request("bad", "int main("));
  auto G2 = M.submit(request("good"));
  ASSERT_TRUE(bool(G1) && bool(Bad) && bool(G2));

  SessionResult RBad = M.wait(*Bad);
  EXPECT_FALSE(RBad.Ok);
  EXPECT_NE(RBad.Error.find("request 'bad'"), std::string::npos)
      << RBad.Error;

  for (uint64_t Id : {*G1, *G2}) {
    SessionResult R = M.wait(Id);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.RecordStateHash, Solo.RecordStateHash);
    EXPECT_EQ(R.PlanFingerprint, Solo.PlanFingerprint);
    EXPECT_EQ(R.LogBytes, Solo.LogBytes);
  }
}

TEST(SessionManagerTest, CancelHonoredAtStageBoundary) {
  SessionManager::Options MO;
  MO.Concurrency = 2; // Hook must run off-thread so cancel() can race in.
  SessionManager M(MO);

  std::mutex Mu;
  std::condition_variable Cv;
  bool Released = false;
  SessionOptions SO;
  SO.StageHook = [&](const char *Stage) {
    if (std::string(Stage) != "admitted")
      return;
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return Released; });
  };
  auto Id = M.submit(request("held"), SO);
  ASSERT_TRUE(bool(Id));
  EXPECT_TRUE(M.cancel(*Id));
  {
    std::lock_guard<std::mutex> L(Mu);
    Released = true;
  }
  Cv.notify_all();

  SessionResult R = M.wait(*Id);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Cancelled);
  EXPECT_NE(R.Error.find("cancelled at stage 'admitted'"),
            std::string::npos)
      << R.Error;
  EXPECT_FALSE(M.cancel(*Id)); // Completion wins.
}

TEST(SessionManagerTest, DeadlineExpiresAtStageBoundary) {
  SessionManager::Options MO;
  MO.Concurrency = 2;
  SessionManager M(MO);

  SessionOptions SO;
  SO.DeadlineMs = 1;
  SO.StageHook = [](const char *Stage) {
    if (std::string(Stage) == "admitted")
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  auto Id = M.submit(request("late"), SO);
  ASSERT_TRUE(bool(Id));
  SessionResult R = M.wait(*Id);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.DeadlineExpired);
  EXPECT_NE(R.Error.find("deadline (1 ms) expired at stage 'admitted'"),
            std::string::npos)
      << R.Error;
}

TEST(SessionManagerTest, AdmissionIsBounded) {
  SessionManager::Options MO;
  MO.Concurrency = 2;
  MO.MaxSessions = 1;
  SessionManager M(MO);

  std::mutex Mu;
  std::condition_variable Cv;
  bool Released = false;
  SessionOptions SO;
  SO.StageHook = [&](const char *Stage) {
    if (std::string(Stage) != "admitted")
      return;
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return Released; });
  };
  auto First = M.submit(request("holder"), SO);
  ASSERT_TRUE(bool(First));

  auto Rejected = M.submit(request("overflow"));
  ASSERT_FALSE(bool(Rejected));
  EXPECT_NE(Rejected.error().message().find("admission bound reached"),
            std::string::npos)
      << Rejected.error().message();
  EXPECT_NE(Rejected.error().message().find("request 'overflow'"),
            std::string::npos);

  {
    std::lock_guard<std::mutex> L(Mu);
    Released = true;
  }
  Cv.notify_all();
  SessionResult R = M.wait(*First);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(SessionManagerTest, ShutdownDrainsAndRejectsNewWork) {
  SessionManager::Options MO;
  MO.Concurrency = 2;
  SessionManager M(MO);
  auto A = M.submit(request("a"));
  auto B = M.submit(request("b"));
  ASSERT_TRUE(bool(A) && bool(B));
  M.shutdown();
  EXPECT_EQ(M.inFlight(), 0u);
  EXPECT_TRUE(M.wait(*A).Ok);
  EXPECT_TRUE(M.wait(*B).Ok);

  auto After = M.submit(request("late"));
  ASSERT_FALSE(bool(After));
  EXPECT_NE(After.error().message().find("shutting down"),
            std::string::npos);
  M.shutdown(); // Idempotent.
}

TEST(SessionManagerTest, WaitOnUnknownIdFailsTyped) {
  SessionManager M(SessionManager::Options{});
  SessionResult R = M.wait(999);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown session id 999"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Request API
//===----------------------------------------------------------------------===//

TEST(PipelineRequestApi, ExplicitProfileSourceAgreesWithImplied) {
  // An explicit Profile equal to Eval must build the same plan as the
  // empty-Profile ("same as Eval") spelling.
  auto Old = core::ChimeraPipeline::create(
      {.Eval = Src, .Profile = Src, .Config = config()});
  ASSERT_TRUE(Old) << Old.error().message();
  auto New = core::ChimeraPipeline::create({.Eval = Src, .Config = config()});
  ASSERT_TRUE(New) << New.error().message();
  EXPECT_EQ(instrument::planFingerprint((*Old)->plan()),
            instrument::planFingerprint((*New)->plan()));
}

TEST(PipelineRequestApi, TagSurfacesInErrorContext) {
  auto P = core::ChimeraPipeline::create(
      {.Eval = "int main(", .Config = config(), .Tag = "broken-job"});
  ASSERT_FALSE(P);
  EXPECT_NE(P.error().message().find("request 'broken-job'"),
            std::string::npos)
      << P.error().message();
}
