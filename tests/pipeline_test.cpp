//===- tests/pipeline_test.cpp - End-to-end pipeline API -------------------===//

#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::core;

namespace {

const char *Src =
    "int c;\nint a[32];\nint tids[2];\n"
    "void w(int* base, int n) { int i; for (i = 0; i < n; i++) { "
    "base[i] = i; c = c + 1; } }\n"
    "int main() { tids[0] = spawn(w, &a[0], 16); "
    "tids[1] = spawn(w, &a[16], 16); join(tids[0]); join(tids[1]); "
    "output(c); return 0; }";

PipelineConfig config() {
  PipelineConfig C;
  C.Name = "pipe";
  C.ProfileRuns = 4;
  return C;
}

} // namespace

TEST(Pipeline, RejectsBadSource) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource("int main(", "", config(), &Err);
  EXPECT_EQ(P, nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(Pipeline, RejectsMismatchedProfileSource) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(
      Src, "int main() { return 0; }", config(), &Err);
  EXPECT_EQ(P, nullptr);
  EXPECT_NE(Err.find("shape"), std::string::npos);
}

TEST(Pipeline, EmptyProfileSourceMeansSameSource) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, "", config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  EXPECT_FALSE(P->raceReport().Pairs.empty());
}

TEST(Pipeline, StagesAreCachedAcrossCalls) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, Src, config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  const auto &R1 = P->raceReport();
  const auto &R2 = P->raceReport();
  EXPECT_EQ(&R1, &R2);
  const auto &I1 = P->instrumentedModule();
  const auto &I2 = P->instrumentedModule();
  EXPECT_EQ(&I1, &I2);
}

TEST(Pipeline, SetPlannerOptionsInvalidatesPlan) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, Src, config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  uint64_t FullLocks = P->plan().Locks.size();
  uint64_t FullWeakOps = P->record(3).Stats.weakAcquiresTotal();

  P->setPlannerOptions(instrument::PlannerOptions::naive());
  uint64_t NaiveWeakOps = P->record(3).Stats.weakAcquiresTotal();
  EXPECT_GE(NaiveWeakOps, FullWeakOps);

  P->setPlannerOptions(instrument::PlannerOptions::full());
  EXPECT_EQ(P->plan().Locks.size(), FullLocks);
}

TEST(Pipeline, DynamicRaceCountZeroWhenInstrumented) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, Src, config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  EXPECT_EQ(P->dynamicRaceCount(9), 0u);
}

TEST(Pipeline, RecordAndReplayRoundTrip) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, Src, config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  auto Out = P->recordAndReplay(77);
  EXPECT_TRUE(Out.Deterministic)
      << Out.Record.Error << " / " << Out.Replay.Error;
  EXPECT_EQ(Out.Record.Output, Out.Replay.Output);
}

TEST(Pipeline, InstrumentedNativeRunWorks) {
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, Src, config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  auto R = P->runInstrumentedNative(4);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Stats.weakAcquiresTotal(), 0u);
  EXPECT_EQ(R.Stats.LogEvents, 0u); // Native mode does not log.
}

TEST(Pipeline, ObserverReceivesEventsDuringRecord) {
  struct Counter : rt::ExecutionObserver {
    uint64_t Mem = 0, Sync = 0, Weak = 0;
    void onMemoryAccess(uint32_t, uint64_t, bool, uint32_t, ir::InstId,
                        uint64_t) override {
      ++Mem;
    }
    void onSync(uint32_t, rt::ObservedSync, uint32_t, uint64_t,
                uint64_t) override {
      ++Sync;
    }
    void onWeak(uint32_t, bool, uint32_t, bool, uint64_t, uint64_t,
                uint64_t) override {
      ++Weak;
    }
  };
  std::string Err;
  auto P = ChimeraPipeline::fromSource(Src, Src, config(), &Err);
  ASSERT_NE(P, nullptr) << Err;
  Counter Obs;
  auto R = P->record(6, &Obs);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(Obs.Mem, 0u);
  EXPECT_GT(Obs.Weak, 0u);
  EXPECT_EQ(Obs.Mem, R.Stats.MemOps);
  EXPECT_EQ(Obs.Weak,
            R.Stats.weakAcquiresTotal() * 2); // Acquires + releases.
}
