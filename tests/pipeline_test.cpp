//===- tests/pipeline_test.cpp - End-to-end pipeline API -------------------===//

#include "TestUtil.h"
#include "core/Pipeline.h"
#include "race/SummaryCache.h"

#include <gtest/gtest.h>

#include <thread>

using namespace chimera;
using namespace chimera::core;

namespace {

const char *Src =
    "int c;\nint a[32];\nint tids[2];\n"
    "void w(int* base, int n) { int i; for (i = 0; i < n; i++) { "
    "base[i] = i; c = c + 1; } }\n"
    "int main() { tids[0] = spawn(w, &a[0], 16); "
    "tids[1] = spawn(w, &a[16], 16); join(tids[0]); join(tids[1]); "
    "output(c); return 0; }";

PipelineConfig config() {
  PipelineConfig C;
  C.Name = "pipe";
  C.ProfileRuns = 4;
  return C;
}

std::unique_ptr<ChimeraPipeline> build(PipelineConfig C) {
  auto P = ChimeraPipeline::create({.Eval = Src, .Config = std::move(C)});
  EXPECT_TRUE(P) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

} // namespace

TEST(Pipeline, RejectsBadSource) {
  auto P = ChimeraPipeline::create({.Eval = "int main(", .Config = config()});
  EXPECT_FALSE(P);
  EXPECT_FALSE(P.error().message().empty());
}

TEST(Pipeline, RejectsMismatchedProfileSource) {
  auto P = ChimeraPipeline::create(
      {.Eval = Src, .Profile = "int main() { return 0; }", .Config = config()});
  ASSERT_FALSE(P);
  EXPECT_NE(P.error().message().find("shape"), std::string::npos);
}

TEST(Pipeline, RejectsInvalidConfig) {
  PipelineConfig C = config();
  C.AnalysisJobs = 100000;
  auto P = ChimeraPipeline::create({.Eval = Src, .Config = C});
  ASSERT_FALSE(P);
  EXPECT_NE(P.error().message().find("AnalysisJobs"), std::string::npos);

  C = config();
  C.ProfileRuns = 0;
  auto P2 = ChimeraPipeline::create({.Eval = Src, .Config = C});
  ASSERT_FALSE(P2);
  EXPECT_NE(P2.error().message().find("ProfileRuns"), std::string::npos);
}

TEST(Pipeline, CompileErrorCarriesDiagnostics) {
  auto Bad = ChimeraPipeline::create({.Eval = "int main(", .Config = config()});
  ASSERT_FALSE(Bad);
  EXPECT_FALSE(Bad.error().message().empty());
  auto Good = ChimeraPipeline::create({.Eval = Src, .Config = config()});
  ASSERT_TRUE(Good.hasValue()) << (Good ? "" : Good.error().message());
  EXPECT_FALSE((*Good)->raceReport().Pairs.empty());
}

TEST(Pipeline, EmptyProfileSourceMeansSameSource) {
  auto P = ChimeraPipeline::create({.Eval = Src, .Config = config()});
  ASSERT_TRUE(P) << P.error().message();
  EXPECT_FALSE((*P)->raceReport().Pairs.empty());
}

TEST(Pipeline, StagesAreCachedAcrossCalls) {
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  const auto &R1 = P->raceReport();
  const auto &R2 = P->raceReport();
  EXPECT_EQ(&R1, &R2);
  const auto &I1 = P->instrumentedModule();
  const auto &I2 = P->instrumentedModule();
  EXPECT_EQ(&I1, &I2);
}

TEST(Pipeline, ConcurrentStageAccessComputesOnce) {
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  const race::RaceReport *Seen[4] = {};
  {
    std::vector<std::thread> Threads;
    for (int I = 0; I != 4; ++I)
      Threads.emplace_back(
          [&, I] { Seen[I] = &P->raceReport(); });
    for (auto &T : Threads)
      T.join();
  }
  for (int I = 1; I != 4; ++I)
    EXPECT_EQ(Seen[I], Seen[0]);
}

TEST(Pipeline, ParallelAnalysisIsDeterministic) {
  // The tentpole guarantee: race report, profile data, and plan are
  // byte-identical whether the analysis runs serially or on 8 workers.
  PipelineConfig Serial = config();
  Serial.AnalysisJobs = 1;
  Serial.UseSummaryCache = false; // Force both sides to really compute.
  PipelineConfig Parallel = config();
  Parallel.AnalysisJobs = 8;
  Parallel.UseSummaryCache = false;

  auto P1 = build(Serial);
  auto P8 = build(Parallel);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P8, nullptr);

  EXPECT_EQ(P1->raceReport().str(P1->originalModule()),
            P8->raceReport().str(P8->originalModule()));
  EXPECT_EQ(P1->profileData().ConcurrentPairs,
            P8->profileData().ConcurrentPairs);
  EXPECT_EQ(P1->plan().summary(P1->originalModule()),
            P8->plan().summary(P8->originalModule()));
}

TEST(Pipeline, SummaryCacheSkipsRecomputation) {
  race::SummaryCache::global().clear();
  auto P1 = build(config());
  ASSERT_NE(P1, nullptr);
  const std::string First = P1->raceReport().str(P1->originalModule());
  obs::Snapshot AfterFirst =
      test::cacheSnapshot(race::SummaryCache::global());
  EXPECT_GT(AfterFirst.value("cache.entries", 0), 0);

  // An identical rebuild replays summaries from the cache and must
  // produce an identical report.
  auto P2 = build(config());
  ASSERT_NE(P2, nullptr);
  EXPECT_EQ(P2->raceReport().str(P2->originalModule()), First);
  obs::Snapshot AfterSecond =
      test::cacheSnapshot(race::SummaryCache::global());
  EXPECT_GT(AfterSecond.value("cache.hits", 0),
            AfterFirst.value("cache.hits", 0));
  EXPECT_EQ(AfterSecond.value("cache.entries", -1),
            AfterFirst.value("cache.entries", -2));
}

TEST(Pipeline, SummaryCacheEvictsOldestAtCapacity) {
  // The process-wide cache must stay bounded across long bench sweeps:
  // overfilling it evicts the oldest entries instead of growing.
  race::SummaryCache Cache;
  race::FunctionSummary S;
  for (uint64_t Key = 0; Key != race::SummaryCache::MaxEntries + 10;
       ++Key)
    Cache.insert(Key, S);

  obs::Snapshot St = test::cacheSnapshot(Cache);
  EXPECT_EQ(St.value("cache.entries", 0),
            static_cast<int64_t>(race::SummaryCache::MaxEntries));
  EXPECT_EQ(St.value("cache.evictions", 0), 10);

  // Keys 0..9 were evicted FIFO; the newest keys are still present.
  race::FunctionSummary Out;
  EXPECT_FALSE(Cache.lookup(0, Out));
  EXPECT_TRUE(
      Cache.lookup(race::SummaryCache::MaxEntries + 9, Out));
}

TEST(Pipeline, SetPlannerOptionsInvalidatesPlan) {
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  uint64_t FullLocks = P->plan().Locks.size();
  uint64_t FullWeakOps = P->record(3).Stats.weakAcquiresTotal();

  P->setPlannerOptions(instrument::PlannerOptions::naive());
  uint64_t NaiveWeakOps = P->record(3).Stats.weakAcquiresTotal();
  EXPECT_GE(NaiveWeakOps, FullWeakOps);

  P->setPlannerOptions(instrument::PlannerOptions::full());
  EXPECT_EQ(P->plan().Locks.size(), FullLocks);
}

TEST(Pipeline, DynamicRaceCountZeroWhenInstrumented) {
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->dynamicRaceCount(9), 0u);
}

TEST(Pipeline, RecordAndReplayRoundTrip) {
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  auto Out = P->recordAndReplay(77);
  EXPECT_TRUE(Out.Deterministic)
      << Out.Record.Error << " / " << Out.Replay.Error;
  EXPECT_EQ(Out.Record.Output, Out.Replay.Output);
}

TEST(Pipeline, InstrumentedNativeRunWorks) {
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  auto R = P->runInstrumentedNative(4);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Stats.weakAcquiresTotal(), 0u);
  EXPECT_EQ(R.Stats.LogEvents, 0u); // Native mode does not log.
}

TEST(Pipeline, ObserverReceivesEventsDuringRecord) {
  struct Counter : rt::ExecutionObserver {
    uint64_t Mem = 0, Sync = 0, Weak = 0;
    void onMemoryAccess(uint32_t, uint64_t, bool, uint32_t, ir::InstId,
                        uint64_t) override {
      ++Mem;
    }
    void onSync(uint32_t, rt::ObservedSync, uint32_t, uint64_t,
                uint64_t) override {
      ++Sync;
    }
    void onWeak(uint32_t, bool, uint32_t, bool, uint64_t, uint64_t,
                uint64_t) override {
      ++Weak;
    }
  };
  auto P = build(config());
  ASSERT_NE(P, nullptr);
  Counter Obs;
  auto R = P->record(6, &Obs);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(Obs.Mem, 0u);
  EXPECT_GT(Obs.Weak, 0u);
  EXPECT_EQ(Obs.Mem, R.Stats.MemOps);
  EXPECT_EQ(Obs.Weak,
            R.Stats.weakAcquiresTotal() * 2); // Acquires + releases.
}
