//===- tests/lexer_test.cpp - MiniC lexer tests ----------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace chimera;

namespace {

std::vector<Token> lex(const std::string &Source, bool ExpectErrors = false) {
  DiagEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(Lexer, EmptyInputYieldsEof) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(Lexer, Keywords) {
  auto Tokens = lex("int void mutex barrier cond if else while for "
                    "return break continue");
  EXPECT_EQ(kinds(Tokens),
            (std::vector<TokenKind>{
                TokenKind::KwInt, TokenKind::KwVoid, TokenKind::KwMutex,
                TokenKind::KwBarrier, TokenKind::KwCond, TokenKind::KwIf,
                TokenKind::KwElse, TokenKind::KwWhile, TokenKind::KwFor,
                TokenKind::KwReturn, TokenKind::KwBreak,
                TokenKind::KwContinue, TokenKind::Eof}));
}

TEST(Lexer, IdentifiersAndLiterals) {
  auto Tokens = lex("foo _bar x9 42 0x1f 0");
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x9");
  EXPECT_EQ(Tokens[3].IntValue, 42);
  EXPECT_EQ(Tokens[4].IntValue, 0x1f);
  EXPECT_EQ(Tokens[5].IntValue, 0);
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto Tokens = lex("<< <= < >> >= > == = != ! && & || | ++ += + -- -= -");
  EXPECT_EQ(kinds(Tokens),
            (std::vector<TokenKind>{
                TokenKind::Shl, TokenKind::LessEq, TokenKind::Less,
                TokenKind::Shr, TokenKind::GreaterEq, TokenKind::Greater,
                TokenKind::EqEq, TokenKind::Assign, TokenKind::NotEq,
                TokenKind::Bang, TokenKind::AmpAmp, TokenKind::Amp,
                TokenKind::PipePipe, TokenKind::Pipe, TokenKind::PlusPlus,
                TokenKind::PlusAssign, TokenKind::Plus,
                TokenKind::MinusMinus, TokenKind::MinusAssign,
                TokenKind::Minus, TokenKind::Eof}));
}

TEST(Lexer, LineCommentsSkipped) {
  auto Tokens = lex("a // comment with ++ tokens\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
}

TEST(Lexer, BlockCommentsSkipped) {
  auto Tokens = lex("a /* multi\nline */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  lex("a /* never closed", /*ExpectErrors=*/true);
}

TEST(Lexer, UnexpectedCharacterIsError) {
  auto Tokens = lex("a @ b", /*ExpectErrors=*/true);
  // The bad character is skipped; lexing continues.
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, LocationsTracked) {
  auto Tokens = lex("a\n  b\n    c");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
  EXPECT_EQ(Tokens[2].Loc.Line, 3u);
  EXPECT_EQ(Tokens[2].Loc.Col, 5u);
}

TEST(Lexer, HexWithoutDigitsIsError) {
  lex("0x", /*ExpectErrors=*/true);
}

TEST(Lexer, TokenKindNamesExist) {
  // Every kind has a non-placeholder name (diagnostics quality).
  for (int K = 0; K <= static_cast<int>(TokenKind::MinusMinus); ++K)
    EXPECT_STRNE(tokenKindName(static_cast<TokenKind>(K)), "unknown token");
}
