//===- tests/plan_audit_test.cpp - Static plan auditor tests ---------------===//
//
// The PlanAuditor must (a) pass every workload at all four Figure-5
// granularity configurations, and (b) reject deliberately corrupted
// plans — dropped guards, granularity mismatches, shrunk symbolic
// ranges — with a hard pipeline error that blocks instrumented runs.
//
//===----------------------------------------------------------------------===//

#include "instrument/PlanAuditor.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::instrument;

namespace {

class AuditSuite : public ::testing::TestWithParam<workloads::WorkloadKind> {
};

const PlannerOptions FigureFiveConfigs[] = {
    PlannerOptions::naive(),
    PlannerOptions::functionOnly(),
    PlannerOptions::loopOnly(),
    PlannerOptions::full(),
};

} // namespace

TEST_P(AuditSuite, CleanAtEveryFigureFiveConfig) {
  auto P = workloads::buildPipelineEx(GetParam(), 4);
  ASSERT_TRUE(P) << P.error().message();
  for (const PlannerOptions &Opts : FigureFiveConfigs) {
    (*P)->setPlannerOptions(Opts);
    const AuditResult &Audit = (*P)->planAudit();
    EXPECT_TRUE(Audit.ok())
        << workloads::workloadInfo(GetParam()).Name
        << " failed audit: " << Audit.Failure.message();
    EXPECT_EQ(Audit.Stats.PairsChecked, (*P)->raceReport().Pairs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(All, AuditSuite,
                         ::testing::ValuesIn(workloads::allWorkloads()));

TEST(PlanAudit, RejectsPlanWithDroppedGuards) {
  auto P = workloads::buildPipelineEx(workloads::WorkloadKind::Pfscan, 4);
  ASSERT_TRUE(P) << P.error().message();
  ASSERT_TRUE((*P)->planAudit().ok());

  // Drop every guard: the lock table still promises coverage, but no
  // acquire is ever emitted.
  (*P)->corruptPlanForTest(
      [](InstrumentationPlan &Plan) { Plan.Functions.clear(); });
  const AuditResult &Audit = (*P)->planAudit();
  ASSERT_FALSE(Audit.ok());
  EXPECT_NE(Audit.Failure.message().find("no weak-lock"), std::string::npos)
      << Audit.Failure.message();

  // The failure is a hard pipeline error for every instrumented run.
  rt::ExecutionResult R = (*P)->record(1);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("plan audit failed"), std::string::npos)
      << R.Error;
  rt::ExecutionResult N = (*P)->runInstrumentedNative(1);
  EXPECT_FALSE(N.Ok);
  core::ChimeraPipeline::RecordReplayOutcome Outcome =
      (*P)->recordAndReplay(1);
  EXPECT_FALSE(Outcome.Deterministic);
}

TEST(PlanAudit, RejectsGranularityMismatch) {
  // pfscan's merge phases are clique-function-locked; lying about those
  // locks' granularity must be caught by the meta-vs-guards cross-check.
  auto P = workloads::buildPipelineEx(workloads::WorkloadKind::Pfscan, 4);
  ASSERT_TRUE(P) << P.error().message();
  (*P)->corruptPlanForTest([](InstrumentationPlan &Plan) {
    bool Corrupted = false;
    for (ir::WeakLockMeta &Meta : Plan.Locks)
      if (Meta.Granularity == ir::WeakLockGranularity::Function) {
        Meta.Granularity = ir::WeakLockGranularity::Instr;
        Corrupted = true;
      }
    ASSERT_TRUE(Corrupted) << "expected at least one function lock";
  });
  const AuditResult &Audit = (*P)->planAudit();
  ASSERT_FALSE(Audit.ok());
  EXPECT_NE(Audit.Failure.message().find("granularity"), std::string::npos)
      << Audit.Failure.message();
}

TEST(PlanAudit, RejectsShrunkSymbolicRange) {
  // radix's zeroing loop carries precise bounds (paper Fig. 4); raising
  // every guard's lower bound far above the derived access range must
  // fail the subsumption check.
  auto P = workloads::buildPipelineEx(workloads::WorkloadKind::Radix, 4);
  ASSERT_TRUE(P) << P.error().message();
  ASSERT_TRUE((*P)->planAudit().ok());
  ASSERT_GT((*P)->planAudit().Stats.RangedGuardsChecked, 0u);

  (*P)->corruptPlanForTest([](InstrumentationPlan &Plan) {
    bool Corrupted = false;
    for (auto &[FuncId, FP] : Plan.Functions)
      for (LoopGuard &G : FP.Loops)
        if (G.HasRange)
          for (bounds::AffineExpr &Lo : G.LoList) {
            Lo = Lo.addConst(1 << 20);
            Corrupted = true;
          }
    ASSERT_TRUE(Corrupted) << "expected at least one ranged guard";
  });
  const AuditResult &Audit = (*P)->planAudit();
  ASSERT_FALSE(Audit.ok());
  EXPECT_NE(Audit.Failure.message().find("subsume"), std::string::npos)
      << Audit.Failure.message();
}

TEST(PlanAudit, CorruptionHookResetsCleanly) {
  // Clearing the hook restores a clean audit (stage cells recompute).
  auto P = workloads::buildPipelineEx(workloads::WorkloadKind::Aget, 4);
  ASSERT_TRUE(P) << P.error().message();
  (*P)->corruptPlanForTest(
      [](InstrumentationPlan &Plan) { Plan.Functions.clear(); });
  EXPECT_FALSE((*P)->planAudit().ok());
  (*P)->corruptPlanForTest(nullptr);
  EXPECT_TRUE((*P)->planAudit().ok());
  rt::ExecutionResult R = (*P)->record(1);
  EXPECT_TRUE(R.Ok) << R.Error;
}
