//===- tests/analysis_test.cpp - CallGraph/Dominators/Loops/PointsTo -------===//

#include "TestUtil.h"
#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/Escape.h"
#include "analysis/LoopInfo.h"
#include "analysis/PointsTo.h"
#include "codegen/CodeGen.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::analysis;

namespace {

std::unique_ptr<ir::Module> compile(const std::string &Source) {
    auto M = test::compileOrNull(Source, "t");
  return M;
}

uint32_t funcId(const ir::Module &M, const std::string &Name) {
  ir::Function *F = M.findFunction(Name);
  EXPECT_NE(F, nullptr) << Name;
  return F ? F->Index : ~0u;
}

} // namespace

//===----------------------------------------------------------------------===//
// CallGraph
//===----------------------------------------------------------------------===//

TEST(CallGraph, EdgesAndRoots) {
  auto M = compile("void leaf() { }\n"
                   "void mid() { leaf(); }\n"
                   "void w(int x) { mid(); }\n"
                   "int main() { int t = spawn(w, 1); join(t); mid(); "
                   "return 0; }");
  CallGraph CG(*M);
  uint32_t Main = funcId(*M, "main"), W = funcId(*M, "w"),
           Mid = funcId(*M, "mid"), Leaf = funcId(*M, "leaf");

  EXPECT_EQ(CG.callees(Main), (std::vector<uint32_t>{Mid, W}));
  EXPECT_EQ(CG.callers(Leaf), (std::vector<uint32_t>{Mid}));
  EXPECT_EQ(CG.spawnTargets(), (std::vector<uint32_t>{W}));
  auto Roots = CG.threadRoots();
  EXPECT_EQ(Roots.size(), 2u);
  EXPECT_TRUE(std::count(Roots.begin(), Roots.end(), Main));
  EXPECT_TRUE(std::count(Roots.begin(), Roots.end(), W));
}

TEST(CallGraph, SccBottomUpOrder) {
  auto M = compile("void a() { }\n"
                   "void b() { a(); }\n"
                   "int main() { b(); return 0; }");
  CallGraph CG(*M);
  // a's SCC must come before b's, which precedes main's.
  EXPECT_LT(CG.sccId(funcId(*M, "a")), CG.sccId(funcId(*M, "b")));
  EXPECT_LT(CG.sccId(funcId(*M, "b")), CG.sccId(funcId(*M, "main")));
}

TEST(CallGraph, MutualRecursionIsOneScc) {
  auto M = compile("int odd(int n) { if (n == 0) { return 0; } "
                   "return even(n - 1); }\n"
                   "int even(int n) { if (n == 0) { return 1; } "
                   "return odd(n - 1); }\n"
                   "int main() { return even(4); }");
  CallGraph CG(*M);
  EXPECT_EQ(CG.sccId(funcId(*M, "odd")), CG.sccId(funcId(*M, "even")));
  EXPECT_NE(CG.sccId(funcId(*M, "odd")), CG.sccId(funcId(*M, "main")));
}

TEST(CallGraph, SpawnInLoopMeansConcurrentInstances) {
  auto M = compile("int tids[4];\nvoid w(int x) { }\nvoid v(int x) { }\n"
                   "int main() { int j; for (j = 0; j < 4; j++) { "
                   "tids[j] = spawn(w, j); } int t = spawn(v, 0); "
                   "join(t); return 0; }");
  CallGraph CG(*M);
  EXPECT_TRUE(CG.mayHaveConcurrentInstances(funcId(*M, "w")));
  EXPECT_FALSE(CG.mayHaveConcurrentInstances(funcId(*M, "v")));
}

TEST(CallGraph, TwoStaticSpawnsMeanConcurrentInstances) {
  auto M = compile("void w(int x) { }\n"
                   "int main() { int a = spawn(w, 1); int b = spawn(w, 2); "
                   "join(a); join(b); return 0; }");
  CallGraph CG(*M);
  EXPECT_TRUE(CG.mayHaveConcurrentInstances(funcId(*M, "w")));
}

TEST(CallGraph, ReachableFrom) {
  auto M = compile("void a() { }\nvoid b() { a(); }\nvoid c() { }\n"
                   "int main() { b(); return 0; }");
  CallGraph CG(*M);
  auto Reach = CG.reachableFrom(funcId(*M, "main"));
  EXPECT_EQ(Reach.size(), 3u); // main, b, a — not c.
  EXPECT_FALSE(std::count(Reach.begin(), Reach.end(), funcId(*M, "c")));
}

//===----------------------------------------------------------------------===//
// Dominators & LoopInfo
//===----------------------------------------------------------------------===//

TEST(Dominators, EntryDominatesEverything) {
  auto M = compile("int main() { int x = 0; if (x) { x = 1; } else "
                   "{ x = 2; } while (x < 5) { x++; } return x; }");
  const ir::Function &F = M->function(funcId(*M, "main"));
  Dominators Dom(F);
  for (ir::BlockId B = 0; B != F.numBlocks(); ++B)
    if (Dom.reachable(B)) {
      EXPECT_TRUE(Dom.dominates(0, B));
    }
}

TEST(Dominators, BranchSidesDontDominateMerge) {
  auto M = compile("int main() { int x = 0; if (x) { x = 1; } else "
                   "{ x = 2; } return x; }");
  const ir::Function &F = M->function(0);
  Dominators Dom(F);
  // Find the two successor blocks of the entry's CondBr.
  auto Succ = F.successors(0);
  ASSERT_EQ(Succ.size(), 2u);
  // Neither branch side dominates the other.
  EXPECT_FALSE(Dom.dominates(Succ[0], Succ[1]));
  EXPECT_FALSE(Dom.dominates(Succ[1], Succ[0]));
}

TEST(LoopInfo, SimpleForLoop) {
  auto M = compile("int main() { int s = 0; int i; "
                   "for (i = 0; i < 10; i++) { s += i; } return s; }");
  const ir::Function &F = M->function(0);
  LoopInfo LI(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  const Loop &L = *LI.loops()[0];
  EXPECT_NE(L.Preheader, ir::NoBlock);
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_FALSE(L.ContainsCall);
  EXPECT_TRUE(L.contains(L.Header));
  // The preheader is outside the loop.
  EXPECT_FALSE(L.contains(L.Preheader));
}

TEST(LoopInfo, NestedLoopsHaveDepths) {
  auto M = compile("int main() { int s = 0; int i; int j; "
                   "for (i = 0; i < 4; i++) { "
                   "for (j = 0; j < 4; j++) { s++; } } return s; }");
  const ir::Function &F = M->function(0);
  LoopInfo LI(F);
  ASSERT_EQ(LI.numLoops(), 2u);
  const Loop *Outer = nullptr, *Inner = nullptr;
  for (const auto &L : LI.loops())
    (L->Depth == 1 ? Outer : Inner) = L.get();
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Parent, Outer);
  EXPECT_TRUE(Outer->contains(Inner));
  EXPECT_EQ(LI.outermostLoop(Inner->Header), Outer);
}

TEST(LoopInfo, CallLikeOpsMarkLoop) {
  auto M = compile("int f() { return 1; }\n"
                   "int main() { int s = 0; int i; "
                   "for (i = 0; i < 3; i++) { s += f(); } "
                   "int j; for (j = 0; j < 3; j++) { s += j; } "
                   "int k; for (k = 0; k < 3; k++) { s += input(); } "
                   "return s; }");
  const ir::Function &F = M->function(funcId(*M, "main"));
  LoopInfo LI(F);
  ASSERT_EQ(LI.numLoops(), 3u);
  unsigned WithCall = 0;
  for (const auto &L : LI.loops())
    WithCall += L->ContainsCall;
  // The f() loop and the input() loop count; the pure loop does not.
  EXPECT_EQ(WithCall, 2u);
}

TEST(LoopInfo, WhileLoopHasPreheader) {
  auto M = compile("int main() { int x = 0; while (x < 5) { x++; } "
                   "return x; }");
  LoopInfo LI(M->function(0));
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_NE(LI.loops()[0]->Preheader, ir::NoBlock);
}

//===----------------------------------------------------------------------===//
// PointsTo
//===----------------------------------------------------------------------===//

TEST(PointsTo, GlobalArrayAddressFlows) {
  auto M = compile("int a[8];\nint b[8];\n"
                   "void use(int* p) { p[0] = 1; }\n"
                   "int main() { use(&a[0]); return 0; }");
  PointsTo PT(*M);
  const ir::Function &Use = M->function(funcId(*M, "use"));
  // Parameter register 0 of use() points to a but not b.
  auto Objs = PT.pointsTo(Use.Index, 0);
  ASSERT_EQ(Objs.size(), 1u);
  EXPECT_EQ(PT.objects()[Objs[0]].name(*M), "@a");
}

TEST(PointsTo, AndersenKeepsDistinctTargetsSeparate) {
  auto M = compile("int a[8];\nint b[8];\n"
                   "void ua(int* p) { p[0] = 1; }\n"
                   "void ub(int* q) { q[0] = 2; }\n"
                   "int main() { ua(a); ub(b); return 0; }");
  PointsTo PT(*M, PointsToFlavor::Andersen);
  uint32_t Ua = funcId(*M, "ua"), Ub = funcId(*M, "ub");
  EXPECT_FALSE(PT.mayAlias(Ua, 0, Ub, 0));
}

TEST(PointsTo, SteensgaardMergesThroughSharedCallee) {
  // Both arrays flow into the same parameter of `use`; Steensgaard's
  // unification then says the two CALLER pointers alias each other,
  // while Andersen keeps them apart. This is the precision gap the
  // paper's §3.3 imprecision discussion rests on.
  const char *Src = "int a[8];\nint b[8];\n"
                    "void use(int* p) { p[0] = 1; }\n"
                    "int main() { int* x = a; int* y = b; use(x); use(y); "
                    "return 0; }";
  auto M1 = compile(Src);
  PointsTo Andersen(*M1, PointsToFlavor::Andersen);
  PointsTo Steens(*M1, PointsToFlavor::Steensgaard);
  uint32_t Main = funcId(*M1, "main");
  const ir::Function &F = M1->function(Main);

  // Find the registers holding x and y (locals 0 and 1 after params).
  ir::Reg X = F.NumParams + 0, Y = F.NumParams + 1;
  EXPECT_FALSE(Andersen.mayAlias(Main, X, Main, Y));
  EXPECT_TRUE(Steens.mayAlias(Main, X, Main, Y));
  // Both are sound: the callee's param may point to both in both.
  uint32_t Use = funcId(*M1, "use");
  EXPECT_EQ(Andersen.pointsTo(Use, 0).size(), 2u);
  EXPECT_EQ(Steens.pointsTo(Use, 0).size(), 2u);
}

TEST(PointsTo, HeapSitesAreDistinct) {
  auto M = compile("int main() { int* p = alloc(4); int* q = alloc(4); "
                   "p[0] = q[0]; return 0; }");
  PointsTo PT(*M);
  const ir::Function &F = M->function(0);
  ir::Reg P = F.NumParams + 0, Q = F.NumParams + 1;
  EXPECT_FALSE(PT.mayAlias(0, P, 0, Q));
}

TEST(PointsTo, PtrAddKeepsObject) {
  auto M = compile("int a[8];\n"
                   "int main() { int* p = a; int* q = p + 3; "
                   "return q[0]; }");
  PointsTo PT(*M);
  const ir::Function &F = M->function(0);
  ir::Reg P = F.NumParams + 0, Q = F.NumParams + 1;
  EXPECT_TRUE(PT.mayAlias(0, P, 0, Q));
}

TEST(PointsTo, SpawnArgsBindToParams) {
  auto M = compile("int a[8];\nvoid w(int* p) { p[0] = 1; }\n"
                   "int main() { int t = spawn(w, &a[2]); join(t); "
                   "return 0; }");
  PointsTo PT(*M);
  uint32_t W = funcId(*M, "w");
  auto Objs = PT.pointsTo(W, 0);
  ASSERT_EQ(Objs.size(), 1u);
  EXPECT_EQ(PT.objects()[Objs[0]].name(*M), "@a");
}

TEST(PointsTo, AccessedObjectsOfStore) {
  auto M = compile("int a[8];\nint main() { a[3] = 5; return 0; }");
  PointsTo PT(*M);
  const ir::Function &F = M->function(0);
  // Find the store instruction.
  for (const auto &BB : F.Blocks)
    for (const auto &Inst : BB.Insts)
      if (Inst.Op == ir::Opcode::Store) {
        auto Objs = PT.accessedObjects(0, Inst.Ident);
        ASSERT_EQ(Objs.size(), 1u);
        EXPECT_EQ(PT.objects()[Objs[0]].name(*M), "@a");
        return;
      }
  FAIL() << "no store found";
}

//===----------------------------------------------------------------------===//
// Escape analysis
//===----------------------------------------------------------------------===//

TEST(Escape, GlobalsAlwaysEscape) {
  auto M = compile("int g;\nint main() { g = 1; return g; }");
  PointsTo PT(*M);
  EscapeAnalysis Escape(*M, PT);
  EXPECT_TRUE(Escape.escapes(0));
}

TEST(Escape, ThreadLocalHeapDoesNotEscape) {
  auto M = compile("void w(int* p) { p[0] = 1; }\n"
                   "int main() { int* shared = alloc(4); "
                   "int* priv = alloc(4); priv[0] = 2; "
                   "int t = spawn(w, shared); join(t); return priv[0]; }");
  PointsTo PT(*M);
  EscapeAnalysis Escape(*M, PT);

  uint32_t SharedObj = ~0u, PrivObj = ~0u;
  const ir::Function &F = *M->findFunction("main");
  ir::Reg Shared = F.NumParams + 0, Priv = F.NumParams + 1;
  auto SO = PT.pointsTo(F.Index, Shared);
  auto PO = PT.pointsTo(F.Index, Priv);
  ASSERT_EQ(SO.size(), 1u);
  ASSERT_EQ(PO.size(), 1u);
  SharedObj = SO[0];
  PrivObj = PO[0];

  EXPECT_TRUE(Escape.escapes(SharedObj));
  EXPECT_FALSE(Escape.escapes(PrivObj));
  EXPECT_GE(Escape.numEscaping(), 1u);
}

//===----------------------------------------------------------------------===//
// Flavor precision ordering
//===----------------------------------------------------------------------===//

// Steensgaard's unification merges everything Andersen's inclusion
// analysis merges (and possibly more), so for every register the
// Andersen points-to set must be a subset of the Steensgaard one. The
// pipeline relies on this ordering: any analysis sound over Steensgaard
// results stays sound when Andersen tightens them.
TEST(PointsTo, AndersenSubsetOfSteensgaardOnAllWorkloads) {
  for (workloads::WorkloadKind Kind : workloads::allWorkloads()) {
    std::string Source =
        workloads::workloadSource(Kind, workloads::evalParams(Kind));
    auto M = compile(Source);
    ASSERT_NE(M, nullptr);
    PointsTo And(*M, PointsToFlavor::Andersen);
    PointsTo Ste(*M, PointsToFlavor::Steensgaard);
    ASSERT_EQ(And.numObjects(), Ste.numObjects());
    for (const std::unique_ptr<ir::Function> &FP : M->Functions) {
      const ir::Function &F = *FP;
      for (ir::Reg R = 0; R < F.NumRegs; ++R) {
        std::vector<uint32_t> A = And.pointsTo(F.Index, R);
        std::vector<uint32_t> S = Ste.pointsTo(F.Index, R);
        EXPECT_TRUE(std::includes(S.begin(), S.end(), A.begin(), A.end()))
            << workloads::workloadInfo(Kind).Name << ": " << F.Name
            << " r" << R << " has Andersen targets missing under "
            << "Steensgaard";
      }
    }
  }
}
