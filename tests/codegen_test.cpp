//===- tests/codegen_test.cpp - AST-to-IR lowering structure ---------------===//
//
// Structural properties of the generated IR that downstream analyses
// rely on (documented in codegen/CodeGen.h): register conventions, loop
// preheaders, short-circuit lowering, and global-array addressing.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/LoopInfo.h"
#include "codegen/CodeGen.h"
#include "ir/Printer.h"
#include "runtime/Machine.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::ir;

namespace {

std::unique_ptr<Module> compile(const std::string &Source) {
    auto M = test::compileOrNull(Source, "t");
  EXPECT_TRUE(verifyModule(*M).empty());
  return M;
}

unsigned countOp(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.Blocks)
    for (const auto &Inst : BB.Insts)
      N += Inst.Op == Op;
  return N;
}

} // namespace

TEST(CodeGen, ParamsOccupyLowRegisters) {
  auto M = compile("int f(int a, int* p) { return a + p[0]; }\n"
                   "int main() { return 0; }");
  const Function &F = *M->findFunction("f");
  EXPECT_EQ(F.NumParams, 2u);
  EXPECT_EQ(F.ParamTypes[0], IRType::Int);
  EXPECT_EQ(F.ParamTypes[1], IRType::Ptr);
  EXPECT_GE(F.NumRegs, 2u);
}

TEST(CodeGen, TemporariesAreSingleAssignment) {
  // Every register above params+locals must be written exactly once —
  // the property the bounds analysis def-chain walker depends on.
  auto M = compile("int a[16];\n"
                   "int f(int n) { int s = 0; int i; "
                   "for (i = 0; i < n; i++) { s = s + a[i] * 3 - 1; } "
                   "return s; }\n"
                   "int main() { return f(4); }");
  const Function &F = *M->findFunction("f");
  unsigned NumSlots = F.NumParams + 2; // Two locals (s, i).
  std::vector<unsigned> DefCount(F.NumRegs, 0);
  for (const auto &BB : F.Blocks)
    for (const auto &Inst : BB.Insts)
      if (Inst.Dst != NoReg)
        ++DefCount[Inst.Dst];
  for (Reg R = NumSlots; R != F.NumRegs; ++R)
    EXPECT_LE(DefCount[R], 1u) << "temporary r" << R << " multi-defined";
}

TEST(CodeGen, EveryLoopHasUniquePreheader) {
  auto M = compile(
      "int a[64];\n"
      "int main() { int i; int j; int s = 0; "
      "for (i = 0; i < 8; i++) { for (j = 0; j < i; j++) { s += a[j]; } } "
      "while (s > 0) { s -= 3; } return s; }");
  const Function &F = *M->findFunction("main");
  analysis::LoopInfo LI(F);
  ASSERT_EQ(LI.numLoops(), 3u);
  for (const auto &L : LI.loops())
    EXPECT_NE(L->Preheader, NoBlock);
}

TEST(CodeGen, GlobalArrayIndexFoldsIntoAddrGlobal) {
  // `a[i]` lowers to AddrGlobal(a, i) so analyses read the object
  // directly rather than chasing pointer arithmetic.
  auto M = compile("int a[8];\nint main() { int i = 3; a[i] = 1; "
                   "return a[i]; }");
  const Function &F = *M->findFunction("main");
  EXPECT_EQ(countOp(F, Opcode::AddrGlobal), 2u);
  EXPECT_EQ(countOp(F, Opcode::PtrAdd), 0u);
}

TEST(CodeGen, PointerIndexUsesPtrAdd) {
  auto M = compile("int a[8];\nint main() { int* p = a; p[2] = 1; "
                   "return p[2]; }");
  const Function &F = *M->findFunction("main");
  EXPECT_EQ(countOp(F, Opcode::PtrAdd), 2u);
}

TEST(CodeGen, ShortCircuitCreatesBranches) {
  auto M = compile("int main() { int a = 1; int b = 0; "
                   "int c = a && b; int d = a || b; return c + d; }");
  const Function &F = *M->findFunction("main");
  // Two short-circuit expressions -> at least two CondBr beyond none.
  EXPECT_GE(countOp(F, Opcode::CondBr), 2u);
}

TEST(CodeGen, CompoundAssignLoadsThenStores) {
  auto M = compile("int g;\nint main() { g += 5; return g; }");
  const Function &F = *M->findFunction("main");
  EXPECT_GE(countOp(F, Opcode::Load), 1u);
  EXPECT_GE(countOp(F, Opcode::Store), 1u);
}

TEST(CodeGen, UnreachableCodeAfterReturnDropped) {
  auto M = compile("int main() { return 1; }");
  const Function &F = *M->findFunction("main");
  unsigned Rets = countOp(F, Opcode::Ret);
  EXPECT_EQ(Rets, 1u);
}

TEST(CodeGen, VoidFunctionGetsImplicitReturn) {
  auto M = compile("void f() { int x = 1; x++; }\n"
                   "int main() { f(); return 0; }");
  const Function &F = *M->findFunction("f");
  EXPECT_EQ(countOp(F, Opcode::Ret), 1u);
  EXPECT_TRUE(F.ReturnsVoid);
}

TEST(CodeGen, SyncBuiltinsLowerToIntrinsics) {
  auto M = compile("mutex m;\nbarrier b(1);\ncond c;\n"
                   "int main() { lock(m); cond_signal(c); unlock(m); "
                   "barrier_wait(b); yield(); output(input()); "
                   "return 0; }");
  const Function &F = *M->findFunction("main");
  EXPECT_EQ(countOp(F, Opcode::MutexLock), 1u);
  EXPECT_EQ(countOp(F, Opcode::MutexUnlock), 1u);
  EXPECT_EQ(countOp(F, Opcode::CondSignal), 1u);
  EXPECT_EQ(countOp(F, Opcode::BarrierWait), 1u);
  EXPECT_EQ(countOp(F, Opcode::Yield), 1u);
  EXPECT_EQ(countOp(F, Opcode::Input), 1u);
  EXPECT_EQ(countOp(F, Opcode::Output), 1u);
  EXPECT_EQ(countOp(F, Opcode::Call), 0u);
}

TEST(CodeGen, SpawnCarriesArguments) {
  auto M = compile("int a[4];\nvoid w(int x, int* p) { p[0] = x; }\n"
                   "int main() { int t = spawn(w, 7, &a[1]); join(t); "
                   "return a[1]; }");
  const Function &F = *M->findFunction("main");
  bool Found = false;
  for (const auto &BB : F.Blocks)
    for (const auto &Inst : BB.Insts)
      if (Inst.Op == Opcode::Spawn) {
        Found = true;
        EXPECT_EQ(Inst.Args.size(), 2u);
        EXPECT_EQ(Inst.Id, M->findFunction("w")->Index);
        EXPECT_NE(Inst.Dst, NoReg);
      }
  EXPECT_TRUE(Found);
}

TEST(CodeGen, SourceLinesAttached) {
  auto M = compile("int g;\n"
                   "int main() {\n"
                   "  g = 1;\n"
                   "  return g;\n"
                   "}\n");
  const Function &F = *M->findFunction("main");
  bool SawLine3 = false;
  for (const auto &BB : F.Blocks)
    for (const auto &Inst : BB.Insts)
      if (Inst.Op == Opcode::Store)
        SawLine3 = Inst.Loc.Line == 3;
  EXPECT_TRUE(SawLine3);
}

TEST(CodeGen, BreakJumpsToLoopExit) {
  // `break` must leave exactly one loop level.
    auto M = test::compileOrNull(
      "int main() { int s = 0; int i; int j; "
      "for (i = 0; i < 4; i++) { "
      "for (j = 0; j < 10; j++) { if (j == 2) { break; } s++; } } "
      "output(s); return 0; }",
      "t");
  rt::MachineOptions MO;
  rt::Machine Machine(*M, MO);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{8})); // 4 outer * 2 inner.
}

TEST(CodeGen, ContinueSkipsToStep) {
    auto M = test::compileOrNull("int main() { int s = 0; int i; "
                        "for (i = 0; i < 6; i++) { "
                        "if (i % 2 == 0) { continue; } s += i; } "
                        "output(s); return 0; }",
                        "t");
  rt::MachineOptions MO;
  rt::Machine Machine(*M, MO);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{9})); // 1 + 3 + 5.
}
