//===- tests/record_replay_test.cpp - Determinism properties ---------------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "core/Pipeline.h"
#include "replay/DeterminismChecker.h"
#include "replay/LogCodec.h"
#include "replay/LogReader.h"
#include "replay/LogWriter.h"
#include "replay/Recorder.h"
#include "replay/Replayer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

using namespace chimera;

namespace {

const char *RacyProgram =
    "int c;\nint hist[4];\nint tids[4];\n"
    // h records *which* counter values this worker observed, so the
    // final state is schedule-sensitive even when weak-locks make the
    // increment itself atomic.
    "void w(int id, int n) { int i; int h = 0; for (i = 0; i < n; i++) { "
    "int t = c; c = t + 1; h = (h * 31 + t) & 1048575; } "
    "hist[id] = h; }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { "
    "tids[j] = spawn(w, j, 800); } "
    "for (j = 0; j < 4; j++) { join(tids[j]); } "
    "output(c); int k; for (k = 0; k < 4; k++) { output(hist[k]); } "
    "return 0; }";

const char *SyncHeavyProgram =
    "int q[32];\nint qh;\nint qt;\nint done;\nint consumed;\n"
    "mutex m;\ncond cv;\nbarrier b(3);\nint tids[3];\n"
    "void producer() { int i; for (i = 0; i < 24; i++) { lock(m); "
    "q[qt & 31] = input() & 255; qt++; cond_signal(cv); unlock(m); } "
    "lock(m); done = 1; cond_broadcast(cv); unlock(m); barrier_wait(b); }\n"
    "void consumer() { int run = 1; while (run) { lock(m); "
    "while (qh == qt && done == 0) { cond_wait(cv, m); } "
    "if (qh < qt) { consumed = consumed + q[qh & 31]; qh++; } "
    "else { run = 0; } unlock(m); } barrier_wait(b); }\n"
    "int main() { tids[0] = spawn(producer); tids[1] = spawn(consumer); "
    "tids[2] = spawn(consumer); int j; "
    "for (j = 0; j < 3; j++) { join(tids[j]); } output(consumed); "
    "return 0; }";

std::unique_ptr<core::ChimeraPipeline> pipelineFor(const char *Source) {
  core::PipelineConfig Config;
  Config.ProfileRuns = 5;
  auto P = core::ChimeraPipeline::create({.Eval = Source, .Config = Config});
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// The core determinism property, across seeds (parameterized).
//===----------------------------------------------------------------------===//

class ReplayDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayDeterminism, RacyProgramReplaysExactly) {
  auto P = pipelineFor(RacyProgram);
  auto Out = P->recordAndReplay(GetParam());
  ASSERT_TRUE(Out.Record.Ok) << Out.Record.Error;
  ASSERT_TRUE(Out.Replay.Ok) << Out.Replay.Error;
  EXPECT_TRUE(Out.Deterministic);
  auto Verdict = replay::checkDeterminism(Out.Record, Out.Replay);
  EXPECT_TRUE(Verdict.Deterministic) << Verdict.Reason;
}

TEST_P(ReplayDeterminism, SyncHeavyProgramReplaysExactly) {
  auto P = pipelineFor(SyncHeavyProgram);
  auto Out = P->recordAndReplay(GetParam());
  ASSERT_TRUE(Out.Record.Ok) << Out.Record.Error;
  ASSERT_TRUE(Out.Replay.Ok) << Out.Replay.Error;
  EXPECT_TRUE(Out.Deterministic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminism,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(ReplayDeterminism, DifferentSeedsProduceDifferentInterleavings) {
  // Sanity: the racy program really is schedule-sensitive — at least two
  // of several seeds must disagree on the final state. This uses the
  // ORIGINAL program: the instrumented one may serialize the racy blocks
  // into a stable rotation (the paper notes in §2.4 that coarse
  // weak-locks can mask fine-grained interleavings).
  auto P = pipelineFor(RacyProgram);
  std::set<uint64_t> Hashes;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto R = P->runOriginalNative(Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    Hashes.insert(R.StateHash);
  }
  EXPECT_GT(Hashes.size(), 1u);
}

TEST(ReplayDeterminism, ReplayDoesNotDependOnMachineSeed) {
  auto P = pipelineFor(RacyProgram);
  auto Rec = P->record(17);
  ASSERT_TRUE(Rec.Ok);
  auto A = replay::replayExecution(P->instrumentedModule(), Rec.Log, 8);
  auto B = replay::replayExecution(P->instrumentedModule(), Rec.Log, 8);
  ASSERT_TRUE(A.Ok && B.Ok) << A.Error << B.Error;
  EXPECT_EQ(A.StateHash, Rec.StateHash);
  EXPECT_EQ(B.StateHash, Rec.StateHash);
}

TEST(ReplayDeterminism, ReplayWorksOnDifferentCoreCount) {
  // The log pins the order; replaying on fewer cores must still land on
  // the identical final state.
  auto P = pipelineFor(RacyProgram);
  auto Rec = P->record(23);
  ASSERT_TRUE(Rec.Ok);
  auto Rep = replay::replayExecution(P->instrumentedModule(), Rec.Log,
                                     /*NumCores=*/2);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.StateHash, Rec.StateHash);
}

//===----------------------------------------------------------------------===//
// Negative: divergence detection
//===----------------------------------------------------------------------===//

TEST(Divergence, UninstrumentedRacyProgramCanDiverge) {
  // Record the ORIGINAL (uninstrumented) racy program: sync order and
  // inputs are logged but the data races are not, so some recording must
  // fail to replay bit-exactly. This is the paper's core motivation.
    auto M = test::compileOrNull(RacyProgram, "racy");
  bool SawDivergence = false;
  for (uint64_t Seed = 1; Seed <= 25 && !SawDivergence; ++Seed) {
    auto Rec = replay::recordExecution(*M, Seed, 8);
    ASSERT_TRUE(Rec.Ok) << Rec.Error;
    auto Rep = replay::replayExecution(*M, Rec.Log, 8);
    SawDivergence = !Rep.Ok || Rep.StateHash != Rec.StateHash;
  }
  EXPECT_TRUE(SawDivergence)
      << "every uninstrumented replay happened to match";
}

TEST(Divergence, TruncatedInputLogIsDetected) {
  const char *Src = "int main() { output(input() & 7); "
                    "output(input() & 7); return 0; }";
    auto M = test::compileOrNull(Src, "t");
  ASSERT_NE(M, nullptr);
  auto Rec = replay::recordExecution(*M, 4);
  ASSERT_TRUE(Rec.Ok);
  rt::ExecutionLog Broken = Rec.Log;
  ASSERT_FALSE(Broken.PerThreadInputs.empty());
  Broken.PerThreadInputs[0].pop_back();
  auto Rep = replay::replayExecution(*M, Broken, 4);
  EXPECT_FALSE(Rep.Ok);
  EXPECT_NE(Rep.Error.find("input log"), std::string::npos);
}

TEST(Divergence, CorruptedOrderLogIsDetected) {
  const char *Src =
      "mutex m;\nint c;\nint tids[2];\n"
      "void w() { lock(m); c = c + 1; unlock(m); }\n"
      "int main() { tids[0] = spawn(w); tids[1] = spawn(w); "
      "join(tids[0]); join(tids[1]); output(c); return 0; }";
    auto M = test::compileOrNull(Src, "t");
  ASSERT_NE(M, nullptr);
  auto Rec = replay::recordExecution(*M, 4);
  ASSERT_TRUE(Rec.Ok);
  // Swap two mutex events: the order becomes infeasible.
  rt::ExecutionLog Broken = Rec.Log;
  auto &Seq = Broken.PerObject[0];
  ASSERT_GE(Seq.size(), 4u);
  std::swap(Seq[0], Seq[1]);
  auto Rep = replay::replayExecution(*M, Broken, 4);
  EXPECT_FALSE(Rep.Ok);
}

TEST(DeterminismChecker, ReportsSpecificFailures) {
  rt::ExecutionResult A, B;
  A.Ok = true;
  B.Ok = true;
  A.StateHash = B.StateHash = 7;
  A.Output = {1, 2};
  B.Output = {1, 2};
  EXPECT_TRUE(replay::checkDeterminism(A, B).Deterministic);

  B.Output = {1, 3};
  auto V1 = replay::checkDeterminism(A, B);
  EXPECT_FALSE(V1.Deterministic);
  EXPECT_NE(V1.Reason.find("index 1"), std::string::npos);

  B.Output = {1};
  EXPECT_NE(replay::checkDeterminism(A, B).Reason.find("length"),
            std::string::npos);

  B.Output = {1, 2};
  B.StateHash = 8;
  EXPECT_NE(replay::checkDeterminism(A, B).Reason.find("hash"),
            std::string::npos);

  B.Ok = false;
  B.Error = "boom";
  EXPECT_NE(replay::checkDeterminism(A, B).Reason.find("boom"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Log storage round trip
//
// Hand-driven LogWriter (as the rt::LogEventSink the Machine would
// drive) -> segmented file -> streaming LogReader. Replaces the old
// whole-buffer encode/decode round trip, which is gone.
//===----------------------------------------------------------------------===//

namespace {

/// Writes \p Log event-by-event through a LogWriter and reads the file
/// back through LogReader::recover. Expects a complete, undamaged
/// stream.
rt::ExecutionLog roundTripThroughStorage(const rt::ExecutionLog &Log,
                                         const std::string &Name) {
  std::string Path = ::testing::TempDir() + "chimera_" + Name + ".clg";
  {
    replay::LogWriter::Options WO;
    WO.SegmentBytes = 512;
    replay::LogWriter W(Path, WO);
    W.onStart(Log.NumSyncObjects, Log.NumWeakLocks);
    for (size_t Obj = 0; Obj != Log.PerObject.size(); ++Obj)
      for (const rt::OrderedEvent &E : Log.PerObject[Obj])
        W.onOrdered(static_cast<uint32_t>(Obj), E.Tid, E.Op);
    for (size_t Tid = 0; Tid != Log.PerThreadInputs.size(); ++Tid)
      for (const rt::InputEvent &E : Log.PerThreadInputs[Tid])
        W.onInput(static_cast<uint32_t>(Tid), E.Kind, E.Value);
    for (const rt::RevocationEvent &R : Log.Revocations)
      W.onRevocation(R);
    W.onEnd(Log.NumThreads, Log.totalOrderedEvents(),
            Log.totalInputEvents());
    support::Error E = W.finish();
    EXPECT_FALSE(bool(E)) << E.message();
  }
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::vector<uint8_t> Bytes{std::istreambuf_iterator<char>(In),
                             std::istreambuf_iterator<char>()};
  In.close();
  std::remove(Path.c_str());

  auto Reader = replay::LogReader::open(std::move(Bytes),
                                        replay::LogReader::Options());
  EXPECT_TRUE(Reader.hasValue()) << (Reader ? "" : Reader.error().message());
  if (!Reader)
    return rt::ExecutionLog();
  replay::LogReader::RecoveredLog RL = Reader->recover();
  EXPECT_TRUE(RL.Complete) << RL.Failure.message();
  return std::move(RL.Log);
}

} // namespace

TEST(LogStorage, RoundTripsRealLog) {
  auto P = pipelineFor(SyncHeavyProgram);
  auto Rec = P->record(9);
  ASSERT_TRUE(Rec.Ok);
  rt::ExecutionLog Decoded = roundTripThroughStorage(Rec.Log, "codec_rt");

  EXPECT_EQ(Decoded.NumSyncObjects, Rec.Log.NumSyncObjects);
  EXPECT_EQ(Decoded.NumWeakLocks, Rec.Log.NumWeakLocks);
  EXPECT_EQ(Decoded.NumThreads, Rec.Log.NumThreads);
  ASSERT_EQ(Decoded.PerObject.size(), Rec.Log.PerObject.size());
  for (size_t I = 0; I != Decoded.PerObject.size(); ++I)
    EXPECT_EQ(Decoded.PerObject[I], Rec.Log.PerObject[I]);
  ASSERT_EQ(Decoded.PerThreadInputs.size(),
            Rec.Log.PerThreadInputs.size());
  for (size_t T = 0; T != Decoded.PerThreadInputs.size(); ++T) {
    ASSERT_EQ(Decoded.PerThreadInputs[T].size(),
              Rec.Log.PerThreadInputs[T].size());
    for (size_t I = 0; I != Decoded.PerThreadInputs[T].size(); ++I) {
      EXPECT_EQ(Decoded.PerThreadInputs[T][I].Kind,
                Rec.Log.PerThreadInputs[T][I].Kind);
      EXPECT_EQ(Decoded.PerThreadInputs[T][I].Value,
                Rec.Log.PerThreadInputs[T][I].Value);
    }
  }
}

TEST(LogStorage, RoundTrippedLogReplays) {
  auto P = pipelineFor(RacyProgram);
  auto Rec = P->record(31);
  ASSERT_TRUE(Rec.Ok);
  rt::ExecutionLog Decoded = roundTripThroughStorage(Rec.Log, "codec_replay");
  auto Rep = replay::replayExecution(P->instrumentedModule(), Decoded, 8);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.StateHash, Rec.StateHash);
}

TEST(LogCodec, SizesAreMeasuredAndCompressed) {
  auto P = pipelineFor(SyncHeavyProgram);
  auto Rec = P->record(2);
  ASSERT_TRUE(Rec.Ok);
  auto Sizes = replay::measureLog(Rec.Log);
  EXPECT_GT(Sizes.InputRaw, 0u);
  EXPECT_GT(Sizes.OrderRaw, 0u);
  EXPECT_GT(Sizes.OrderCompressed, 0u);
  EXPECT_LE(Sizes.OrderCompressed, Sizes.OrderRaw + 16);
}

TEST(LogStorage, RevocationsSurviveRoundTrip) {
  rt::ExecutionLog Log;
  Log.NumSyncObjects = 1;
  Log.NumWeakLocks = 2;
  Log.NumThreads = 3;
  Log.PerObject.resize(Log.numOrderedObjects());
  Log.PerObject[0].push_back({1, rt::OrderedOp::MutexLock});
  Log.Revocations.push_back({2, 1, 777});
  Log.PerThreadInputs.resize(3);
  Log.PerThreadInputs[1].push_back({rt::InputKind::NetRecv, 0xabcd});

  rt::ExecutionLog D = roundTripThroughStorage(Log, "codec_revoke");
  ASSERT_EQ(D.Revocations.size(), 1u);
  EXPECT_EQ(D.Revocations[0].Tid, 2u);
  EXPECT_EQ(D.Revocations[0].LockId, 1u);
  EXPECT_EQ(D.Revocations[0].Instret, 777u);
}
