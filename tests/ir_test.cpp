//===- tests/ir_test.cpp - IR construction/verifier/printer tests ----------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::ir;

namespace {

/// A minimal module with one void function for builder tests.
std::unique_ptr<Module> makeModule() {
  auto M = std::make_unique<Module>();
  M->Name = "test";
  auto F = std::make_unique<Function>();
  F->Name = "main";
  F->ReturnsVoid = true;
  F->addBlock();
  M->Functions.push_back(std::move(F));
  M->MainFunction = 0;
  M->layoutGlobals();
  return M;
}

} // namespace

TEST(IRBuilder, FreshRegistersAndIds) {
  auto M = makeModule();
  Function &F = M->function(0);
  IRBuilder B(F);
  Reg A = B.constInt(1);
  Reg C = B.constInt(2);
  EXPECT_NE(A, C);
  const auto &Insts = F.block(0).Insts;
  ASSERT_EQ(Insts.size(), 2u);
  EXPECT_NE(Insts[0].Ident, Insts[1].Ident);
}

TEST(IRBuilder, TerminatorClosesBlock) {
  auto M = makeModule();
  Function &F = M->function(0);
  IRBuilder B(F);
  B.ret();
  EXPECT_TRUE(B.blockClosed());
}

TEST(Verifier, AcceptsWellFormedModule) {
    auto M = test::compileOrNull("int g;\nint a[4];\nmutex m;\n"
                        "int helper(int x) { return x * 2; }\n"
                        "int main() { lock(m); g = helper(a[1]); "
                        "unlock(m); return g; }",
                        "ok");
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  auto M = makeModule();
  IRBuilder B(M->function(0));
  B.constInt(1); // No terminator.
  auto Problems = verifyModule(*M);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  auto M = makeModule();
  Function &F = M->function(0);
  IRBuilder B(F);
  Reg R = B.constInt(1);
  B.ret();
  F.block(0).Insts[0].Dst = R + 100;
  EXPECT_FALSE(verifyModule(*M).empty());
}

TEST(Verifier, RejectsBadBranchTarget) {
  auto M = makeModule();
  Function &F = M->function(0);
  IRBuilder B(F);
  B.br(57);
  EXPECT_FALSE(verifyModule(*M).empty());
}

TEST(Verifier, RejectsWrongSyncKind) {
  auto M = makeModule();
  M->Syncs.push_back({SyncKind::Cond, "c", 0});
  Function &F = M->function(0);
  IRBuilder B(F);
  B.mutexLock(0); // Actually a cond.
  B.ret();
  auto Problems = verifyModule(*M);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("wrong sync kind"), std::string::npos);
}

TEST(Verifier, RejectsCallArityMismatch) {
  auto M = makeModule();
  auto Callee = std::make_unique<Function>();
  Callee->Name = "f";
  Callee->Index = 1;
  Callee->NumParams = 2;
  Callee->NumRegs = 2;
  Callee->ParamTypes = {IRType::Int, IRType::Int};
  Callee->addBlock();
  {
    IRBuilder CB(*Callee);
    CB.ret(CB.constInt(0));
  }
  M->Functions.push_back(std::move(Callee));

  Function &F = M->function(0);
  IRBuilder B(F);
  Reg A = B.constInt(1);
  B.call(1, {A}, /*WantResult=*/true); // Needs 2 args.
  B.ret();
  EXPECT_FALSE(verifyModule(*M).empty());
}

TEST(Verifier, RejectsWeakLockIdOutOfRange) {
  auto M = makeModule();
  Function &F = M->function(0);
  IRBuilder B(F);
  B.weakAcquire(3); // No weak locks declared.
  B.ret();
  EXPECT_FALSE(verifyModule(*M).empty());
}

TEST(Verifier, RejectsHalfRange) {
  auto M = makeModule();
  M->WeakLocks.push_back({WeakLockGranularity::Loop, "wl", true});
  Function &F = M->function(0);
  IRBuilder B(F);
  Reg Lo = B.constInt(0);
  B.weakAcquire(0, Lo, NoReg);
  B.ret();
  auto Problems = verifyModule(*M);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("both bounds"), std::string::npos);
}

TEST(Module, GlobalLayoutIsContiguous) {
    auto M = test::compileOrNull("int a;\nint b[10];\nint c;\n"
                        "int main() { return 0; }",
                        "layout");
  EXPECT_EQ(M->Globals[0].BaseAddr, Module::GlobalBase);
  EXPECT_EQ(M->Globals[1].BaseAddr, Module::GlobalBase + 1);
  EXPECT_EQ(M->Globals[2].BaseAddr, Module::GlobalBase + 11);
  EXPECT_EQ(M->globalSegmentWords(), 12u);
}

TEST(Module, GlobalContaining) {
    auto M = test::compileOrNull("int a;\nint b[10];\nint c;\n"
                        "int main() { return 0; }",
                        "layout");
  EXPECT_EQ(M->globalContaining(Module::GlobalBase), 0u);
  EXPECT_EQ(M->globalContaining(Module::GlobalBase + 5), 1u);
  EXPECT_EQ(M->globalContaining(Module::GlobalBase + 11), 2u);
  EXPECT_EQ(M->globalContaining(Module::GlobalBase + 12), ~0u);
  EXPECT_EQ(M->globalContaining(0), ~0u);
}

TEST(Module, CloneIsDeepAndEqual) {
  auto M = test::compileOrNull("int g;\nint main() { g = 1; return g; }",
                               "c");
  auto Copy = M->clone();
  EXPECT_EQ(printModule(*M), printModule(*Copy));
  // Mutating the clone leaves the original alone.
  Copy->function(0).block(0).Insts.clear();
  EXPECT_NE(printModule(*M), printModule(*Copy));
}

TEST(Module, CloneKeepsInstIdCounter) {
  auto M = test::compileOrNull("int main() { return 0; }", "c");
  auto Copy = M->clone();
  // New ids in the clone must not collide with existing ones.
  InstId Fresh = Copy->function(0).newInstId();
  for (const auto &BB : Copy->function(0).Blocks)
    for (const auto &Inst : BB.Insts)
      EXPECT_NE(Inst.Ident, Fresh);
}

TEST(Function, FindInstAndPos) {
    auto M = test::compileOrNull("int main() { int x = 3; return x; }", "f");
  const Function &F = M->function(0);
  const Instruction &First = F.block(0).Insts[0];
  EXPECT_EQ(F.findInst(First.Ident), &First);
  auto Pos = F.findInstPos(First.Ident);
  EXPECT_TRUE(Pos.valid());
  EXPECT_EQ(Pos.Block, 0u);
  EXPECT_EQ(Pos.Index, 0u);
  EXPECT_EQ(F.findInst(99999), nullptr);
  EXPECT_FALSE(F.findInstPos(99999).valid());
}

TEST(Function, Successors) {
    auto M = test::compileOrNull("int main() { int x = 0; if (x) { x = 1; } "
                        "return x; }",
                        "s");
  const Function &F = M->function(0);
  auto Succ = F.successors(0);
  EXPECT_EQ(Succ.size(), 2u); // CondBr.
}

TEST(Printer, RoundsKeyConstructs) {
    auto M = test::compileOrNull("int a[4];\nmutex m;\n"
                        "void w(int id) { lock(m); a[id] = id; unlock(m); }\n"
                        "int main() { int t = spawn(w, 1); join(t); "
                        "output(a[1]); return 0; }",
                        "p");
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("mutex @m"), std::string::npos);
  EXPECT_NE(Text.find("global @a[4]"), std::string::npos);
  EXPECT_NE(Text.find("mutex_lock @m"), std::string::npos);
  EXPECT_NE(Text.find("spawn w"), std::string::npos);
  EXPECT_NE(Text.find("addrg @a"), std::string::npos);
}
