//===- tests/dynamic_detector_test.cpp - HB race-detector oracle -----------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "race/DynamicDetector.h"
#include "runtime/Machine.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::race;

namespace {

uint64_t racesIn(const std::string &Source, uint64_t Seed = 1) {
    auto M = test::compileOrNull(Source, "t");
  DynamicDetector Detector;
  rt::MachineOptions MO;
  MO.Seed = Seed;
  MO.Observer = &Detector;
  rt::Machine Machine(*M, MO);
  auto R = Machine.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return Detector.raceCount();
}

} // namespace

TEST(DynamicDetector, CleanSequentialProgram) {
  EXPECT_EQ(racesIn("int a[8];\nint main() { int i; "
                    "for (i = 0; i < 8; i++) { a[i] = i; } "
                    "return a[3]; }"),
            0u);
}

TEST(DynamicDetector, RacyCounterDetected) {
  uint64_t Races =
      racesIn("int c;\nint tids[2];\n"
              "void w(int n) { int i; for (i = 0; i < n; i++) { "
              "c = c + 1; } }\n"
              "int main() { tids[0] = spawn(w, 200); "
              "tids[1] = spawn(w, 200); join(tids[0]); join(tids[1]); "
              "return 0; }");
  EXPECT_GT(Races, 0u);
}

TEST(DynamicDetector, MutexedCounterClean) {
  EXPECT_EQ(racesIn("int c;\nmutex m;\nint tids[2];\n"
                    "void w(int n) { int i; for (i = 0; i < n; i++) { "
                    "lock(m); c = c + 1; unlock(m); } }\n"
                    "int main() { tids[0] = spawn(w, 100); "
                    "tids[1] = spawn(w, 100); join(tids[0]); "
                    "join(tids[1]); return 0; }"),
            0u);
}

TEST(DynamicDetector, ForkJoinOrderingRespected) {
  EXPECT_EQ(racesIn("int x;\nvoid w() { x = x + 1; }\n"
                    "int main() { x = 5; int t = spawn(w); join(t); "
                    "x = x + 1; output(x); return 0; }"),
            0u);
}

TEST(DynamicDetector, BarrierOrderingRespected) {
  EXPECT_EQ(racesIn("int x;\nint y;\nbarrier b(2);\nint tids[2];\n"
                    "void w(int id) { if (id == 0) { x = 1; } "
                    "barrier_wait(b); if (id == 1) { y = x; } }\n"
                    "int main() { tids[0] = spawn(w, 0); "
                    "tids[1] = spawn(w, 1); join(tids[0]); join(tids[1]); "
                    "output(y); return 0; }"),
            0u);
}

TEST(DynamicDetector, CondVarOrderingRespected) {
  EXPECT_EQ(
      racesIn("int data;\nint ready;\nmutex m;\ncond cv;\nint got;\n"
              "void consumer() { lock(m); while (ready == 0) { "
              "cond_wait(cv, m); } got = data; unlock(m); }\n"
              "int main() { int t = spawn(consumer); "
              "data = 77; lock(m); ready = 1; cond_signal(cv); unlock(m); "
              "join(t); output(got); return 0; }"),
      0u);
}

TEST(DynamicDetector, RaceDetailsAreReported) {
    auto M = test::compileOrNull("int g;\nint tids[2];\nvoid w() { g = g + 1; }\n"
                        "int main() { tids[0] = spawn(w); "
                        "tids[1] = spawn(w); join(tids[0]); "
                        "join(tids[1]); return 0; }",
                        "t");
  ASSERT_NE(M, nullptr);
  // Scan seeds until the two increments actually interleave.
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    DynamicDetector Detector;
    rt::MachineOptions MO;
    MO.Seed = Seed;
    MO.Observer = &Detector;
    rt::Machine Machine(*M, MO);
    auto R = Machine.run();
    ASSERT_TRUE(R.Ok);
    if (Detector.raceCount()) {
      const DynamicRace &Race = Detector.races()[0];
      EXPECT_NE(Race.TidA, Race.TidB);
      EXPECT_TRUE(Race.WriteA || Race.WriteB);
      EXPECT_FALSE(Race.str().empty());
      return;
    }
  }
  FAIL() << "no seed interleaved the racy accesses";
}

//===----------------------------------------------------------------------===//
// Weak-lock happens-before semantics
//===----------------------------------------------------------------------===//

namespace {

/// Instruments the racy-counter program with one unranged weak-lock
/// around the counter update, then counts dynamic races.
uint64_t racesWithWeakLock(bool Ranged, uint64_t RangeLoA, uint64_t RangeHiA,
                           uint64_t RangeLoB, uint64_t RangeHiB) {
    auto M = test::compileOrNull("int c;\nint d;\nint tids[2];\n"
                        "void wa() { c = c + 1; }\n"
                        "void wb() { c = c + 2; }\n"
                        "int main() { tids[0] = spawn(wa); "
                        "tids[1] = spawn(wb); join(tids[0]); "
                        "join(tids[1]); return 0; }",
                        "t");
  M->WeakLocks.push_back(
      {ir::WeakLockGranularity::Function, "wl", Ranged});

  auto wrap = [&](const char *Name, uint64_t Lo, uint64_t Hi) {
    ir::Function &F = *M->findFunction(Name);
    auto &Insts = F.block(0).Insts;
    ir::Instruction Acq;
    Acq.Op = ir::Opcode::WeakAcquire;
    Acq.Imm = 0;
    if (Ranged) {
      // Materialize the range as constants.
      ir::Instruction CLo, CHi;
      CLo.Op = CHi.Op = ir::Opcode::ConstInt;
      CLo.Imm = static_cast<int64_t>(Lo);
      CHi.Imm = static_cast<int64_t>(Hi);
      CLo.Dst = F.newReg();
      CHi.Dst = F.newReg();
      CLo.Ident = F.newInstId();
      CHi.Ident = F.newInstId();
      Acq.A = CLo.Dst;
      Acq.B = CHi.Dst;
      Insts.insert(Insts.begin(), CHi);
      Insts.insert(Insts.begin(), CLo);
    }
    Acq.Ident = F.newInstId();
    Insts.insert(Insts.begin() + (Ranged ? 2 : 0), Acq);
    ir::Instruction Rel;
    Rel.Op = ir::Opcode::WeakRelease;
    Rel.Imm = 0;
    Rel.Ident = F.newInstId();
    Insts.insert(Insts.end() - 1, Rel);
  };
  wrap("wa", RangeLoA, RangeHiA);
  wrap("wb", RangeLoB, RangeHiB);

  uint64_t Total = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    DynamicDetector Detector;
    rt::MachineOptions MO;
    MO.Seed = Seed;
    MO.Observer = &Detector;
    rt::Machine Machine(*M, MO);
    auto R = Machine.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    Total += Detector.raceCount();
  }
  return Total;
}

} // namespace

TEST(DynamicDetector, WeakLockCreatesHappensBefore) {
  EXPECT_EQ(racesWithWeakLock(false, 0, 0, 0, 0), 0u);
}

TEST(DynamicDetector, OverlappingRangesCreateHappensBefore) {
  EXPECT_EQ(racesWithWeakLock(true, 100, 200, 150, 250), 0u);
}

TEST(DynamicDetector, DisjointRangesGiveNoFalseHappensBefore) {
  // Both threads hold the SAME lock id but with disjoint ranges, so the
  // counter updates stay unordered: the oracle must still see the race
  // on some seed (no false HB edge through the shared lock id).
  EXPECT_GT(racesWithWeakLock(true, 0, 9, 100, 109), 0u);
}
