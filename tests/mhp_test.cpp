//===- tests/mhp_test.cpp - May-happen-in-parallel analysis tests ----------===//
//
// Covers the MHP filter (ISSUE 3): mode parsing, fork/join pruning
// (straight-line and counted-loop join matching, worker lifetime
// disjointness), barrier-phase pruning, the precision targets on the
// phase-structured workloads, the soundness cross-check against the
// dynamic happens-before oracle, and record/replay determinism of
// pruned plans.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/MayHappenInParallel.h"
#include "codegen/CodeGen.h"
#include "race/DynamicDetector.h"
#include "race/RelayDetector.h"
#include "replay/LogCodec.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace chimera;
using namespace chimera::analysis;

namespace {

struct Detected {
  std::unique_ptr<ir::Module> M;
  race::RaceReport Report;
};

/// Compiles \p Source and runs RELAY with the MHP filter in \p Mode.
Detected detect(const std::string &Source, MhpMode Mode) {
  Detected Out;
    Out.M = test::compileOrNull(Source, "t");
  analysis::CallGraph CG(*Out.M);
  analysis::PointsTo PT(*Out.M);
  analysis::EscapeAnalysis Escape(*Out.M, PT);
  MayHappenInParallel Mhp(*Out.M, CG, PT, Mode);
  race::RelayDetector Detector(*Out.M, CG, PT, Escape, nullptr, nullptr,
                               &Mhp);
  Out.Report = Detector.detect();
  return Out;
}

uint64_t prunedTotal(const race::RaceReport &R) { return R.Mhp.pruned(); }

} // namespace

//===----------------------------------------------------------------------===//
// Mode parsing
//===----------------------------------------------------------------------===//

TEST(MhpMode, ParsesKnownSpellings) {
  EXPECT_EQ(*parseMhpMode("off"), MhpMode::Off);
  EXPECT_EQ(*parseMhpMode("forkjoin"), MhpMode::ForkJoin);
  EXPECT_EQ(*parseMhpMode("barrier"), MhpMode::Barrier);
}

TEST(MhpMode, RejectsUnknownSpellingWithError) {
  auto R = parseMhpMode("everything");
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().message().find("unknown MHP mode"), std::string::npos);
  EXPECT_NE(R.error().message().find("everything"), std::string::npos);
  EXPECT_FALSE(parseMhpMode(""));
  EXPECT_FALSE(parseMhpMode("Barrier")); // Case-sensitive, no guessing.
}

TEST(MhpMode, NamesRoundTrip) {
  for (MhpMode M : {MhpMode::Off, MhpMode::ForkJoin, MhpMode::Barrier})
    EXPECT_EQ(*parseMhpMode(mhpModeName(M)), M);
}

//===----------------------------------------------------------------------===//
// Fork/join pruning on small programs
//===----------------------------------------------------------------------===//

namespace {

/// Main writes before the spawn, between spawn and join (a real race!),
/// and after the join.
const char *StraightLineSrc = "int g;\n"
                              "void w(int x) { g = g + x; }\n"
                              "int main() {\n"
                              "  g = 1;\n"
                              "  int t = spawn(w, 5);\n"
                              "  g = 2;\n"
                              "  join(t);\n"
                              "  g = 3;\n"
                              "  return g;\n"
                              "}\n";

} // namespace

TEST(MhpForkJoin, StraightLineSpawnJoinPrunesOutsideTheWindow) {
  Detected Off = detect(StraightLineSrc, MhpMode::Off);
  Detected FJ = detect(StraightLineSrc, MhpMode::ForkJoin);

  ASSERT_FALSE(Off.Report.Pairs.empty());
  EXPECT_TRUE(Off.Report.PrunedPairs.empty());
  EXPECT_EQ(Off.Report.Mhp.Mode, MhpMode::Off);

  // The mid-window write still races; the pre-spawn and post-join
  // accesses are pruned.
  EXPECT_FALSE(FJ.Report.Pairs.empty());
  EXPECT_FALSE(FJ.Report.PrunedPairs.empty());
  EXPECT_LT(FJ.Report.Pairs.size(), Off.Report.Pairs.size());
  EXPECT_EQ(FJ.Report.Mhp.PairsBefore, Off.Report.Pairs.size());
  EXPECT_EQ(FJ.Report.Pairs.size() + FJ.Report.PrunedPairs.size(),
            Off.Report.Pairs.size());
  for (const race::PrunedRace &P : FJ.Report.PrunedPairs)
    EXPECT_EQ(P.Reason, MhpOrdering::OrderedForkJoin);
}

TEST(MhpForkJoin, UnjoinedSpawnOnlyPrunesPreSpawnCode) {
  const char *Src = "int g;\n"
                    "void w(int x) { g = x; }\n"
                    "int main() {\n"
                    "  g = 1;\n"
                    "  int t = spawn(w, 5);\n"
                    "  g = 2;\n"
                    "  return t;\n"
                    "}\n";
  Detected Off = detect(Src, MhpMode::Off);
  Detected FJ = detect(Src, MhpMode::ForkJoin);
  // g = 1 is strictly before any instance of w can exist; g = 2 races
  // forever because w is never joined.
  EXPECT_FALSE(FJ.Report.Pairs.empty());
  EXPECT_FALSE(FJ.Report.PrunedPairs.empty());
  EXPECT_EQ(FJ.Report.Mhp.PairsBefore, Off.Report.Pairs.size());
}

TEST(MhpForkJoin, CountedSpawnAndJoinLoopsRetireWorkers) {
  const char *Src = "int g;\n"
                    "int tids[4];\n"
                    "void w(int x) { g = g + x; }\n"
                    "int main() {\n"
                    "  int i;\n"
                    "  for (i = 0; i < 4; i++) {\n"
                    "    tids[i] = spawn(w, i);\n"
                    "  }\n"
                    "  for (i = 0; i < 4; i++) {\n"
                    "    join(tids[i]);\n"
                    "  }\n"
                    "  g = 7;\n"
                    "  return g;\n"
                    "}\n";
  Detected Off = detect(Src, MhpMode::Off);
  Detected FJ = detect(Src, MhpMode::ForkJoin);

  // Off: main's post-loop write and return-read race with w, and w races
  // with itself across instances.
  ASSERT_FALSE(Off.Report.Pairs.empty());

  // ForkJoin: the join loop provably retires every spawned instance, so
  // every main<->w pair vanishes. The w<->w self-race must survive (the
  // spawn loop runs instances concurrently).
  EXPECT_FALSE(FJ.Report.PrunedPairs.empty());
  uint32_t WId = Off.M->findFunction("w")->Index;
  uint32_t MainId = Off.M->MainFunction;
  for (const race::RacePair &P : FJ.Report.Pairs) {
    EXPECT_EQ(P.A.FuncId, WId);
    EXPECT_EQ(P.B.FuncId, WId);
  }
  bool SawMainPrune = false;
  for (const race::PrunedRace &P : FJ.Report.PrunedPairs)
    SawMainPrune = SawMainPrune || P.Pair.A.FuncId == MainId ||
                   P.Pair.B.FuncId == MainId;
  EXPECT_TRUE(SawMainPrune);
  ASSERT_FALSE(FJ.Report.Pairs.empty()); // Self-race kept: soundness.
}

TEST(MhpForkJoin, SequentialWorkerLifetimesNeverOverlap) {
  const char *Src = "int g;\n"
                    "void w1(int x) { g = x; }\n"
                    "void w2(int x) { g = x + 1; }\n"
                    "int main() {\n"
                    "  int t = spawn(w1, 1);\n"
                    "  join(t);\n"
                    "  int u = spawn(w2, 2);\n"
                    "  join(u);\n"
                    "  return g;\n"
                    "}\n";
  Detected Off = detect(Src, MhpMode::Off);
  Detected FJ = detect(Src, MhpMode::ForkJoin);
  // w1 is joined before w2 is spawned: w1<->w2 and both main pairs are
  // all ordered.
  ASSERT_FALSE(Off.Report.Pairs.empty());
  EXPECT_TRUE(FJ.Report.Pairs.empty());
  EXPECT_EQ(FJ.Report.PrunedPairs.size(), Off.Report.Pairs.size());
}

//===----------------------------------------------------------------------===//
// Barrier-phase pruning
//===----------------------------------------------------------------------===//

namespace {

/// Two workers; each writes g before the barrier and reads it after.
/// The write<->read pairs are phase-ordered; write<->write is not.
const char *BarrierPhaseSrc = "int g;\n"
                              "int tids[2];\n"
                              "barrier b(2);\n"
                              "void w(int id) {\n"
                              "  g = id;\n"
                              "  barrier_wait(b);\n"
                              "  int x = g;\n"
                              "  output(x);\n"
                              "}\n"
                              "int main() {\n"
                              "  int i;\n"
                              "  for (i = 0; i < 2; i++) {\n"
                              "    tids[i] = spawn(w, i);\n"
                              "  }\n"
                              "  for (i = 0; i < 2; i++) {\n"
                              "    join(tids[i]);\n"
                              "  }\n"
                              "  return 0;\n"
                              "}\n";

} // namespace

TEST(MhpBarrier, AlignedBarrierOrdersPhases) {
  Detected FJ = detect(BarrierPhaseSrc, MhpMode::ForkJoin);
  Detected Bar = detect(BarrierPhaseSrc, MhpMode::Barrier);

  // Fork/join alone cannot order accesses within the workers.
  ASSERT_FALSE(FJ.Report.Pairs.empty());

  // Barrier mode prunes the cross-phase write<->read pair but must keep
  // the same-phase write<->write self-race.
  EXPECT_LT(Bar.Report.Pairs.size(), FJ.Report.Pairs.size());
  EXPECT_GT(Bar.Report.Mhp.PrunedBarrier, 0u);
  ASSERT_FALSE(Bar.Report.Pairs.empty());
  bool SawWriteWrite = false;
  for (const race::RacePair &P : Bar.Report.Pairs)
    SawWriteWrite = SawWriteWrite || (P.A.IsWrite && P.B.IsWrite);
  EXPECT_TRUE(SawWriteWrite);
}

TEST(MhpBarrier, IntrospectionReportsAlignmentAndInstances) {
    auto M = test::compileOrNull(BarrierPhaseSrc, "t");
  analysis::CallGraph CG(*M);
  analysis::PointsTo PT(*M);
  MayHappenInParallel Mhp(*M, CG, PT, MhpMode::Barrier);

  uint32_t W = M->findFunction("w")->Index;
  // Two instances of w from the counted spawn loop; parties == 2, so the
  // barrier is aligned.
  EXPECT_EQ(Mhp.maxInstances(W), 2u);
  EXPECT_EQ(Mhp.maxInstances(M->MainFunction), 1u);
  ASSERT_EQ(M->Syncs.size(), 1u);
  EXPECT_TRUE(Mhp.barrierAligned(0));
}

TEST(MhpBarrier, OverSubscribedBarrierIsNotAligned) {
  // Four worker instances share a 2-party barrier: generations are no
  // longer global phases, so no barrier pruning is allowed.
  const char *Src = "int g;\n"
                    "int tids[4];\n"
                    "barrier b(2);\n"
                    "void w(int id) {\n"
                    "  g = id;\n"
                    "  barrier_wait(b);\n"
                    "  int x = g;\n"
                    "  output(x);\n"
                    "}\n"
                    "int main() {\n"
                    "  int i;\n"
                    "  for (i = 0; i < 4; i++) {\n"
                    "    tids[i] = spawn(w, i);\n"
                    "  }\n"
                    "  for (i = 0; i < 4; i++) {\n"
                    "    join(tids[i]);\n"
                    "  }\n"
                    "  return 0;\n"
                    "}\n";
    auto M = test::compileOrNull(Src, "t");
  analysis::CallGraph CG(*M);
  analysis::PointsTo PT(*M);
  MayHappenInParallel Mhp(*M, CG, PT, MhpMode::Barrier);
  EXPECT_FALSE(Mhp.barrierAligned(0));

  Detected Bar = detect(Src, MhpMode::Barrier);
  EXPECT_EQ(Bar.Report.Mhp.PrunedBarrier, 0u);
}

//===----------------------------------------------------------------------===//
// Workload precision and soundness
//===----------------------------------------------------------------------===//

namespace {

class MhpWorkloadSuite
    : public ::testing::TestWithParam<workloads::WorkloadKind> {};

} // namespace

TEST(MhpWorkloads, PrunesAtLeastTwentyPercentOnPhasedWorkloads) {
  // The acceptance target: >= 20% of static race pairs pruned on at
  // least two phase-structured workloads.
  using workloads::WorkloadKind;
  for (WorkloadKind Kind :
       {WorkloadKind::Pfscan, WorkloadKind::Water, WorkloadKind::Ocean}) {
    auto P = workloads::buildPipelineEx(Kind, 4);
    ASSERT_TRUE(P) << P.error().message();
    const race::RaceReport &R = (*P)->raceReport();
    EXPECT_EQ(R.Mhp.Mode, MhpMode::Barrier);
    ASSERT_GT(R.Mhp.PairsBefore, 0u);
    EXPECT_GE(prunedTotal(R) * 5, R.Mhp.PairsBefore)
        << workloads::workloadInfo(Kind).Name << ": pruned "
        << prunedTotal(R) << " of " << R.Mhp.PairsBefore;
  }
}

TEST_P(MhpWorkloadSuite, NoDynamicallyObservedRaceWasPruned) {
  // Soundness cross-check: every race the happens-before oracle observes
  // in real schedules of the *original* program must still be in the
  // static report — never in the pruned set.
  auto P = workloads::buildPipelineEx(GetParam(), 4);
  ASSERT_TRUE(P) << P.error().message();
  const race::RaceReport &R = (*P)->raceReport();

  std::set<uint64_t> PrunedKeys;
  for (const race::PrunedRace &Pruned : R.PrunedPairs)
    PrunedKeys.insert(Pruned.Pair.key());

  for (uint64_t Seed : {1u, 17u, 4242u}) {
    race::DynamicDetector Oracle(/*MaxRaces=*/512);
    rt::ExecutionResult Result = (*P)->runOriginalNative(Seed, &Oracle);
    ASSERT_TRUE(Result.Ok) << Result.Error;
    for (const race::DynamicRace &D : Oracle.races()) {
      race::RacePair Observed;
      Observed.A = {D.FuncA, D.InstA, D.WriteA};
      Observed.B = {D.FuncB, D.InstB, D.WriteB};
      EXPECT_EQ(PrunedKeys.count(Observed.key()), 0u)
          << "unsound prune: dynamically racy pair " << D.str()
          << " was removed by MHP";
    }
  }
}

TEST_P(MhpWorkloadSuite, StatsAreConsistent) {
  auto P = workloads::buildPipelineEx(GetParam(), 4);
  ASSERT_TRUE(P) << P.error().message();
  const race::RaceReport &R = (*P)->raceReport();
  EXPECT_EQ(R.Mhp.PairsBefore, R.Pairs.size() + R.PrunedPairs.size());
  EXPECT_EQ(R.Mhp.pruned(), R.PrunedPairs.size());
  EXPECT_EQ(R.Mhp.pairsAfter(), R.Pairs.size());

  // Off mode must report exactly the pre-pruning pair population.
  core::PipelineConfig Config;
  Config.Mhp = MhpMode::Off;
  auto Off = workloads::buildPipelineEx(GetParam(), 4, Config);
  ASSERT_TRUE(Off) << Off.error().message();
  const race::RaceReport &OffR = (*Off)->raceReport();
  EXPECT_EQ(OffR.Pairs.size(), R.Mhp.PairsBefore);
  EXPECT_TRUE(OffR.PrunedPairs.empty());
}

INSTANTIATE_TEST_SUITE_P(All, MhpWorkloadSuite,
                         ::testing::ValuesIn(workloads::allWorkloads()));

//===----------------------------------------------------------------------===//
// Determinism of pruned plans
//===----------------------------------------------------------------------===//

TEST(MhpDeterminism, PrunedPlansRecordAndReplayBitIdentically) {
  using workloads::WorkloadKind;
  for (WorkloadKind Kind : {WorkloadKind::Pfscan, WorkloadKind::Water}) {
    auto P1 = workloads::buildPipelineEx(Kind, 4);
    ASSERT_TRUE(P1) << P1.error().message();
    ASSERT_GT((*P1)->raceReport().PrunedPairs.size(), 0u);

    core::ChimeraPipeline::RecordReplayOutcome Outcome =
        (*P1)->recordAndReplay(7);
    ASSERT_TRUE(Outcome.Record.Ok) << Outcome.Record.Error;
    ASSERT_TRUE(Outcome.Replay.Ok) << Outcome.Replay.Error;
    EXPECT_TRUE(Outcome.Deterministic);
    EXPECT_EQ(Outcome.Record.StateHash, Outcome.Replay.StateHash);

    // A second, independently built pipeline over the same source must
    // produce a bit-identical log.
    auto P2 = workloads::buildPipelineEx(Kind, 4);
    ASSERT_TRUE(P2) << P2.error().message();
    rt::ExecutionResult R2 = (*P2)->record(7);
    ASSERT_TRUE(R2.Ok) << R2.Error;
    EXPECT_EQ(replay::encodeLog(Outcome.Record.Log),
              replay::encodeLog(R2.Log));
    EXPECT_EQ(Outcome.Record.StateHash, R2.StateHash);
  }
}
