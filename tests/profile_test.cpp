//===- tests/profile_test.cpp - Profiler and clique analysis tests ---------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "profile/CliqueAnalysis.h"
#include "profile/Profiler.h"
#include "runtime/Machine.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::profile;

namespace {

ProfileData profileSource(const std::string &Source, unsigned Runs = 5,
                          unsigned Cores = 4) {
    auto M = test::compileOrNull(Source, "t");
  ProfileData Data;
  for (unsigned Run = 0; Run != Runs; ++Run) {
    ConcurrencyProfiler Prof;
    rt::MachineOptions MO;
    MO.Seed = 1000 + Run;
    MO.NumCores = Cores;
    MO.Observer = &Prof;
    rt::Machine Machine(*M, MO);
    auto R = Machine.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    Data.merge(Prof.finish());
  }
  return Data;
}

uint32_t fid(const std::string &Source, const std::string &Name) {
    auto M = test::compileOrNull(Source, "t");
  return M->findFunction(Name)->Index;
}

} // namespace

TEST(Profiler, ParallelWorkersAreConcurrent) {
  const char *Src =
      "int sink[4];\nint tids[4];\n"
      "void busy(int id) { int i; int s = 0; "
      "for (i = 0; i < 5000; i++) { s += i; } sink[id] = s; }\n"
      "int main() { int j; for (j = 0; j < 4; j++) { "
      "tids[j] = spawn(busy, j); } "
      "for (j = 0; j < 4; j++) { join(tids[j]); } return 0; }";
  ProfileData Data = profileSource(Src);
  uint32_t Busy = fid(Src, "busy");
  EXPECT_TRUE(Data.concurrent(Busy, Busy));
}

TEST(Profiler, BarrierSeparatedPhasesAreNotConcurrent) {
  const char *Src =
      "int x[8];\nbarrier b(2);\nint tids[2];\n"
      "void pa() { int i; for (i = 0; i < 500; i++) { x[0] += i; } }\n"
      "void pb() { int i; for (i = 0; i < 500; i++) { x[1] += i; } }\n"
      "void w(int id) { if (id == 0) { pa(); } barrier_wait(b); "
      "if (id == 1) { pb(); } }\n"
      "int main() { tids[0] = spawn(w, 0); tids[1] = spawn(w, 1); "
      "join(tids[0]); join(tids[1]); return 0; }";
  ProfileData Data = profileSource(Src, 10);
  uint32_t Pa = fid(Src, "pa"), Pb = fid(Src, "pb");
  EXPECT_FALSE(Data.concurrent(Pa, Pb));
  EXPECT_FALSE(Data.concurrent(Pa, Pa));
  EXPECT_FALSE(Data.concurrent(Pb, Pb));
}

TEST(Profiler, InitVsWorkerNotConcurrent) {
  const char *Src =
      "int cfg[8];\nint out[2];\nint tids[2];\n"
      "void init() { int i; for (i = 0; i < 8; i++) { cfg[i] = i; } }\n"
      "void w(int id) { out[id] = cfg[id]; }\n"
      "int main() { init(); tids[0] = spawn(w, 0); tids[1] = spawn(w, 1); "
      "join(tids[0]); join(tids[1]); return 0; }";
  ProfileData Data = profileSource(Src, 10);
  EXPECT_FALSE(Data.concurrent(fid(Src, "init"), fid(Src, "w")));
}

TEST(Profiler, NestedCalleeCountsAsActive) {
  // While `inner` runs on thread A, its caller `outer` is still on the
  // stack — both must register as concurrent with thread B's function.
  const char *Src =
      "int sink[4];\nint tids[2];\n"
      "void inner(int id) { int i; for (i = 0; i < 4000; i++) { "
      "sink[id] += i; } }\n"
      "void outer(int id) { inner(id); }\n"
      "int main() { tids[0] = spawn(outer, 0); tids[1] = spawn(outer, 1); "
      "join(tids[0]); join(tids[1]); return 0; }";
  ProfileData Data = profileSource(Src, 5);
  uint32_t Outer = fid(Src, "outer"), Inner = fid(Src, "inner");
  EXPECT_TRUE(Data.concurrent(Outer, Outer));
  EXPECT_TRUE(Data.concurrent(Inner, Inner));
  EXPECT_TRUE(Data.concurrent(Outer, Inner));
}

TEST(Profiler, MergeAccumulatesAcrossRuns) {
  ProfileData A, B;
  A.ConcurrentPairs.insert({1, 2});
  B.ConcurrentPairs.insert({2, 3});
  A.merge(B);
  EXPECT_EQ(A.numPairs(), 2u);
  EXPECT_TRUE(A.concurrent(3, 2)); // Order-insensitive.
}

//===----------------------------------------------------------------------===//
// Clique analysis (paper §4.2, Figure 3)
//===----------------------------------------------------------------------===//

namespace {

/// Builds the paper's Figure 3 scenario directly: functions 0..3 =
/// alice, bob, carol, dave.
struct Fig3 {
  ProfileData Profile;
  std::vector<std::pair<uint32_t, uint32_t>> RacyPairs;

  Fig3() {
    // Concurrent pairs: bob-dave (dotted+concurrent), everything else
    // among {alice,bob,carol} and carol-dave non-concurrent. A pair is
    // non-concurrent iff absent from the set; list the concurrent ones.
    Profile.ConcurrentPairs.insert({1, 3}); // bob ∥ dave.
    // alice-dave concurrent too (not an edge in Fig 3c).
    Profile.ConcurrentPairs.insert({0, 3});
    // Racy pairs: alice-bob, alice-carol, bob-dave.
    RacyPairs = {{0, 1}, {0, 2}, {1, 3}};
  }
};

} // namespace

TEST(Cliques, Figure3Assignment) {
  Fig3 Fx;
  ConcurrencyGraph CG({0, 1, 2, 3}, Fx.Profile);
  CliqueResult Result = assignFunctionLocks(Fx.RacyPairs, CG);

  // alice-bob and alice-carol share one function-lock (the
  // {alice,bob,carol} clique); bob-dave stays uncovered (concurrent).
  ASSERT_EQ(Result.Locks.size(), 1u);
  const FunctionLockPlan &Lock = Result.Locks[0];
  EXPECT_EQ(Lock.CoveredPairs.size(), 2u);
  EXPECT_EQ(Lock.Acquirers, (std::vector<uint32_t>{0, 1, 2}));
  ASSERT_EQ(Result.Uncovered.size(), 1u);
  EXPECT_EQ(Result.Uncovered[0], (std::pair<uint32_t, uint32_t>{1, 3}));
}

TEST(Cliques, SelfPairNeedsSelfNonConcurrency) {
  ProfileData Profile; // Nothing concurrent.
  ConcurrencyGraph CG({5}, Profile);
  auto Result = assignFunctionLocks({{5, 5}}, CG);
  ASSERT_EQ(Result.Locks.size(), 1u);
  EXPECT_EQ(Result.Locks[0].Acquirers, (std::vector<uint32_t>{5}));

  ProfileData SelfConc;
  SelfConc.ConcurrentPairs.insert({5, 5});
  ConcurrencyGraph CG2({5}, SelfConc);
  auto Result2 = assignFunctionLocks({{5, 5}}, CG2);
  EXPECT_TRUE(Result2.Locks.empty());
  EXPECT_EQ(Result2.Uncovered.size(), 1u);
}

TEST(Cliques, PairInTwoCliquesPicksBusierOne) {
  // Functions 0-1-2 form a clique; 2-3 a second. Pair (2,3) and pairs
  // (0,1),(0,2),(1,2) — the triangle clique covers more pairs, so pair
  // (0,2) lands there even though node 2 is in both cliques.
  ProfileData Profile;
  Profile.ConcurrentPairs.insert({0, 3});
  Profile.ConcurrentPairs.insert({1, 3});
  ConcurrencyGraph CG({0, 1, 2, 3}, Profile);
  auto Result = assignFunctionLocks({{0, 1}, {0, 2}, {1, 2}, {2, 3}}, CG);
  ASSERT_EQ(Result.Locks.size(), 2u);
  // One lock covers the three triangle pairs, the other covers (2,3).
  size_t Covered3 = 0, Covered1 = 0;
  for (const auto &L : Result.Locks) {
    if (L.CoveredPairs.size() == 3)
      ++Covered3;
    if (L.CoveredPairs.size() == 1)
      ++Covered1;
  }
  EXPECT_EQ(Covered3, 1u);
  EXPECT_EQ(Covered1, 1u);
  EXPECT_EQ(Result.Covered.size(), 4u);
}

TEST(Cliques, ConcurrentPairNotCoverable) {
  ProfileData Profile;
  Profile.ConcurrentPairs.insert({0, 1});
  ConcurrencyGraph CG({0, 1}, Profile);
  auto Result = assignFunctionLocks({{0, 1}}, CG);
  EXPECT_TRUE(Result.Locks.empty());
  EXPECT_EQ(Result.Uncovered.size(), 1u);
}

TEST(Cliques, OneLockReducesAcquisitions) {
  // The Fig 3(a)->(b) point: without cliques alice would take two locks;
  // with cliques the covering lock set for alice is exactly one.
  Fig3 Fx;
  ConcurrencyGraph CG({0, 1, 2, 3}, Fx.Profile);
  CliqueResult Result = assignFunctionLocks(Fx.RacyPairs, CG);
  unsigned LocksForAlice = 0;
  for (const auto &L : Result.Locks)
    for (uint32_t F : L.Acquirers)
      if (F == 0)
        ++LocksForAlice;
  EXPECT_EQ(LocksForAlice, 1u);
}
