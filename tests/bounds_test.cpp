//===- tests/bounds_test.cpp - Symbolic bounds analysis tests --------------===//

#include "TestUtil.h"
#include "analysis/LoopInfo.h"
#include "bounds/BoundsAnalysis.h"
#include "codegen/CodeGen.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::bounds;

namespace {

/// Compiles, finds the (first) racy-looking memory access to \p Global
/// in \p Func, and returns its bounds over the outermost loop.
struct BoundsFixture {
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<analysis::LoopInfo> LI;
  std::unique_ptr<BoundsAnalysis> BA;
  const ir::Function *F = nullptr;

  explicit BoundsFixture(const std::string &Source,
                         const std::string &Func) {
        M = test::compileOrNull(Source, "t");
    F = M->findFunction(Func);
    EXPECT_NE(F, nullptr);
    LI = std::make_unique<analysis::LoopInfo>(*F);
    BA = std::make_unique<BoundsAnalysis>(*M, *F, *LI);
  }

  /// The Nth memory access (load or store) in the function.
  ir::InstId access(unsigned N, bool WantStore) const {
    unsigned Count = 0;
    for (const auto &BB : F->Blocks)
      for (const auto &Inst : BB.Insts)
        if ((WantStore && Inst.Op == ir::Opcode::Store) ||
            (!WantStore && Inst.Op == ir::Opcode::Load))
          if (Count++ == N)
            return Inst.Ident;
    ADD_FAILURE() << "access not found";
    return ir::NoInst;
  }

  const analysis::Loop *outerLoop() const {
    for (const auto &L : LI->loops())
      if (!L->Parent)
        return L.get();
    return nullptr;
  }
  const analysis::Loop *innerLoop() const {
    const analysis::Loop *Best = nullptr;
    for (const auto &L : LI->loops())
      if (!Best || L->Depth > Best->Depth)
        Best = L.get();
    return Best;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// AffineExpr algebra
//===----------------------------------------------------------------------===//

TEST(AffineExpr, Arithmetic) {
  AffineExpr X = AffineExpr::reg(1);
  AffineExpr E = X.mulConst(3).addConst(5).add(AffineExpr::reg(2));
  EXPECT_EQ(E.coeff(1), 3);
  EXPECT_EQ(E.coeff(2), 1);
  EXPECT_EQ(E.constantValue(), 5);
  EXPECT_EQ(E.evaluate({{1, 10}, {2, 7}}), 42);
}

TEST(AffineExpr, SubtractionCancels) {
  AffineExpr X = AffineExpr::reg(1);
  AffineExpr Zero = X.sub(X);
  EXPECT_TRUE(Zero.isConstant());
  EXPECT_EQ(Zero.constantValue(), 0);
}

TEST(AffineExpr, NonLinearProductInvalid) {
  AffineExpr X = AffineExpr::reg(1), Y = AffineExpr::reg(2);
  EXPECT_FALSE(X.mul(Y).valid());
  EXPECT_TRUE(X.mul(AffineExpr::constant(4)).valid());
}

TEST(AffineExpr, InvalidPropagates) {
  AffineExpr Bad = AffineExpr::invalid();
  EXPECT_FALSE(Bad.add(AffineExpr::constant(1)).valid());
  EXPECT_FALSE(AffineExpr::constant(1).sub(Bad).valid());
  EXPECT_FALSE(Bad.negate().valid());
}

TEST(AffineExpr, Substitute) {
  // 2x + y, x := 3z + 1  =>  6z + y + 2.
  AffineExpr E = AffineExpr::reg(1).mulConst(2).add(AffineExpr::reg(2));
  AffineExpr Sub = AffineExpr::reg(3).mulConst(3).addConst(1);
  AffineExpr Out = E.substitute(1, Sub);
  EXPECT_EQ(Out.coeff(3), 6);
  EXPECT_EQ(Out.coeff(2), 1);
  EXPECT_EQ(Out.coeff(1), 0);
  EXPECT_EQ(Out.constantValue(), 2);
}

//===----------------------------------------------------------------------===//
// Fourier-Motzkin elimination
//===----------------------------------------------------------------------===//

TEST(FourierMotzkin, SingleVariableBox) {
  // target = 10 + 2i, i in [a, b-1].
  ConstraintSystem Sys;
  ir::Reg I = 1, A = BoundsAnalysis::preheaderAtom(10),
          B = BoundsAnalysis::preheaderAtom(11);
  Sys.addVariable(I, AffineExpr::reg(A),
                  AffineExpr::reg(B).addConst(-1));
  AffineExpr Target = AffineExpr::reg(I).mulConst(2).addConst(10);
  BoundsResult R = eliminate(Sys, Target);
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R.Min.evaluate({{A, 5}, {B, 9}}), 20);  // 10 + 2*5
  EXPECT_EQ(R.Max.evaluate({{A, 5}, {B, 9}}), 26);  // 10 + 2*8
}

TEST(FourierMotzkin, NegativeCoefficientSwapsBounds) {
  ConstraintSystem Sys;
  ir::Reg I = 1, N = BoundsAnalysis::preheaderAtom(9);
  Sys.addVariable(I, AffineExpr::constant(0),
                  AffineExpr::reg(N).addConst(-1));
  AffineExpr Target = AffineExpr::reg(I).mulConst(-1).addConst(100);
  BoundsResult R = eliminate(Sys, Target);
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R.Min.evaluate({{N, 11}}), 90);  // 100 - 10
  EXPECT_EQ(R.Max.evaluate({{N, 11}}), 100); // 100 - 0
}

TEST(FourierMotzkin, NestedVariables) {
  // Inner j in [0, i], outer i in [0, n-1]; target = 10*i + j.
  ConstraintSystem Sys;
  ir::Reg J = 2, I = 1, N = BoundsAnalysis::preheaderAtom(9);
  Sys.addVariable(J, AffineExpr::constant(0), AffineExpr::reg(I));
  Sys.addVariable(I, AffineExpr::constant(0),
                  AffineExpr::reg(N).addConst(-1));
  AffineExpr Target = AffineExpr::reg(I).mulConst(10).add(AffineExpr::reg(J));
  BoundsResult R = eliminate(Sys, Target);
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R.Min.evaluate({{N, 5}}), 0);
  EXPECT_EQ(R.Max.evaluate({{N, 5}}), 44); // 10*4 + 4
}

TEST(FourierMotzkin, InvalidBoundInvalidates) {
  ConstraintSystem Sys;
  Sys.addVariable(1, AffineExpr::invalid(), AffineExpr::constant(10));
  BoundsResult R = eliminate(Sys, AffineExpr::reg(1));
  EXPECT_FALSE(R.valid());
}

//===----------------------------------------------------------------------===//
// Induction recognition
//===----------------------------------------------------------------------===//

TEST(Induction, SimpleCountedLoop) {
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n) { int i; for (i = 0; i < n; i++) { "
                   "a[i] = i; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  auto Ind = Fx.BA->analyzeInduction(Fx.outerLoop());
  ASSERT_TRUE(Ind.Found);
  EXPECT_EQ(Ind.Step, 1);
  ASSERT_TRUE(Ind.Lower.valid());
  ASSERT_TRUE(Ind.Upper.valid());
}

TEST(Induction, DownwardLoop) {
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n) { int i; for (i = n; i > 0; i -= 2) { "
                   "a[i] = i; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  auto Ind = Fx.BA->analyzeInduction(Fx.outerLoop());
  ASSERT_TRUE(Ind.Found);
  EXPECT_EQ(Ind.Step, -2);
}

TEST(Induction, WhileLoopWithManualIncrement) {
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n) { int i = 0; while (i < n) { a[i] = 1; "
                   "i = i + 3; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  auto Ind = Fx.BA->analyzeInduction(Fx.outerLoop());
  ASSERT_TRUE(Ind.Found);
  EXPECT_EQ(Ind.Step, 3);
}

TEST(Induction, DataDependentStepNotRecognized) {
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n, int s) { int i; "
                   "for (i = 0; i < n; i += s) { a[i] = 1; } }\n"
                   "int main() { f(8, 2); return 0; }",
                   "f");
  auto Ind = Fx.BA->analyzeInduction(Fx.outerLoop());
  EXPECT_FALSE(Ind.Found); // Step is not a compile-time constant.
}

//===----------------------------------------------------------------------===//
// Address bounds (paper §5 / Figure 4 patterns)
//===----------------------------------------------------------------------===//

TEST(Bounds, PointerParamPlusInduction) {
  // Figure 4's first loop: rank[j], j in [0, n).
  BoundsFixture Fx("int rank_all[512];\n"
                   "void zero_rank(int* rank, int n) { int j; "
                   "for (j = 0; j < n; j++) { rank[j] = 0; } }\n"
                   "int main() { zero_rank(&rank_all[0], 8); return 0; }",
                   "zero_rank");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  // Lo = rank (the base pointer param), Hi = rank + n - 1.
  ir::Reg RankAtom = BoundsAnalysis::preheaderAtom(0); // Param 0.
  ir::Reg NAtom = BoundsAnalysis::preheaderAtom(1);    // Param 1.
  EXPECT_EQ(B.Lo.coeff(RankAtom), 1);
  EXPECT_EQ(B.Lo.constantValue(), 0);
  EXPECT_EQ(B.Hi.coeff(RankAtom), 1);
  EXPECT_EQ(B.Hi.coeff(NAtom), 1);
  EXPECT_EQ(B.Hi.constantValue(), -1);
}

TEST(Bounds, DataDependentIndexUnderivable) {
  // Figure 4's second loop: rank[key[j] & mask] has no derivable bounds
  // (the paper's first imprecision source, §5.2).
  BoundsFixture Fx("int rank_all[512];\nint keys[64];\n"
                   "void count(int* rank, int n) { int j; "
                   "for (j = 0; j < n; j++) { int k = keys[j] & 255; "
                   "rank[k] = rank[k] + 1; } }\n"
                   "int main() { count(&rank_all[0], 8); return 0; }",
                   "count");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  EXPECT_FALSE(B.Valid);
}

TEST(Bounds, MaskedArithmeticUnderivable) {
  // The paper's second imprecision source: unsupported operators.
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n) { int i; for (i = 0; i < n; i++) { "
                   "a[i & 7] = 1; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  EXPECT_FALSE(B.Valid);
}

TEST(Bounds, GlobalArrayConstantBase) {
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n) { int i; for (i = 0; i < n; i++) { "
                   "a[i + 3] = 1; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  int64_t Base =
      static_cast<int64_t>(Fx.M->Globals[0].BaseAddr);
  // At runtime with n = 8: addresses [base+3, base+10].
  ir::Reg NAtom = BoundsAnalysis::preheaderAtom(0);
  EXPECT_EQ(B.Lo.evaluate({{NAtom, 8}}), Base + 3);
  EXPECT_EQ(B.Hi.evaluate({{NAtom, 8}}), Base + 10);
}

TEST(Bounds, ScaledInductionVariable) {
  BoundsFixture Fx("int a[512];\n"
                   "void f(int n) { int i; for (i = 0; i < n; i++) { "
                   "a[i * 8 + 2] = 1; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  int64_t Base = static_cast<int64_t>(Fx.M->Globals[0].BaseAddr);
  ir::Reg NAtom = BoundsAnalysis::preheaderAtom(0);
  EXPECT_EQ(B.Lo.evaluate({{NAtom, 4}}), Base + 2);
  EXPECT_EQ(B.Hi.evaluate({{NAtom, 4}}), Base + 26); // 3*8+2.
}

TEST(Bounds, NestedLoopMatrixRows) {
  // ocean/fft pattern: base[i*64 + j] over i in [0, rows), j in [0, 64).
  BoundsFixture Fx("int grid[4096];\n"
                   "void f(int* base, int rows) { int i; int j; "
                   "for (i = 0; i < rows; i++) { "
                   "for (j = 0; j < 64; j++) { base[i * 64 + j] = 1; } } }\n"
                   "int main() { f(&grid[0], 4); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  ir::Reg BaseAtom = BoundsAnalysis::preheaderAtom(0);
  ir::Reg RowsAtom = BoundsAnalysis::preheaderAtom(1);
  // Lo = base; Hi = base + 64*rows - 1 (i=rows-1, j=63).
  EXPECT_EQ(B.Lo.evaluate({{BaseAtom, 1000}, {RowsAtom, 4}}), 1000);
  EXPECT_EQ(B.Hi.evaluate({{BaseAtom, 1000}, {RowsAtom, 4}}), 1255);
}

TEST(Bounds, InnerLoopOnly) {
  // Bounds over just the inner loop: i is invariant there.
  BoundsFixture Fx("int grid[4096];\n"
                   "void f(int* base, int rows) { int i; int j; "
                   "for (i = 0; i < rows; i++) { "
                   "for (j = 0; j < 64; j++) { base[i * 64 + j] = 1; } } }\n"
                   "int main() { f(&grid[0], 4); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.innerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  // Hi - Lo == 63 regardless of symbol values.
  AffineExpr Width = B.Hi.sub(B.Lo);
  ASSERT_TRUE(Width.isConstant());
  EXPECT_EQ(Width.constantValue(), 63);
}

TEST(Bounds, LoopInvariantCellIsDegenerate) {
  // pfscan's maxlen: a single cell, Lo == Hi.
  BoundsFixture Fx("int maxv;\nint a[64];\n"
                   "void f(int n) { int i; for (i = 0; i < n; i++) { "
                   "if (a[i] > maxv) { maxv = a[i]; } } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  // The store to maxv.
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  EXPECT_TRUE(B.Lo == B.Hi);
}

TEST(Bounds, NegativeOffsetsInStencil) {
  // ocean's neighbor access src[i - 64].
  BoundsFixture Fx("int grid[4096];\n"
                   "void f(int* src, int n) { int i; "
                   "for (i = 0; i < n; i++) { src[i - 64] = src[i]; } }\n"
                   "int main() { f(&grid[64], 8); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  ASSERT_TRUE(B.Valid);
  ir::Reg SrcAtom = BoundsAnalysis::preheaderAtom(0);
  ir::Reg NAtom = BoundsAnalysis::preheaderAtom(1);
  EXPECT_EQ(B.Lo.evaluate({{SrcAtom, 500}, {NAtom, 8}}), 500 - 64);
  EXPECT_EQ(B.Hi.evaluate({{SrcAtom, 500}, {NAtom, 8}}), 500 - 57);
}

TEST(Bounds, MultiDefLocalInvalidates) {
  // The base pointer is reassigned inside the loop: not expressible.
  BoundsFixture Fx("int a[64];\nint b[64];\n"
                   "void f(int n, int flag) { int i; int* p = a; "
                   "for (i = 0; i < n; i++) { "
                   "p[i] = 1; if (flag) { p = b; } } }\n"
                   "int main() { f(8, 0); return 0; }",
                   "f");
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  EXPECT_FALSE(B.Valid);
}

TEST(Bounds, AccessOutsideLoopInvalid) {
  BoundsFixture Fx("int a[64];\n"
                   "void f(int n) { a[0] = 1; int i; "
                   "for (i = 0; i < n; i++) { a[i] = 2; } }\n"
                   "int main() { f(8); return 0; }",
                   "f");
  // access(0): the a[0] store outside the loop.
  auto B = Fx.BA->addressBounds(Fx.outerLoop(), Fx.access(0, true));
  EXPECT_FALSE(B.Valid);
}
