//===- tests/determinism_matrix_test.cpp - Batching invariance -------------===//
//
// The dispatch-batch size (MachineOptions::DispatchBatch) is a pure
// host-speed knob: for every value, native, record, and replay runs must
// produce bit-identical state hashes, outputs, and encoded logs. This
// matrix pins that contract across workloads with different sharing
// structure (condvar work queue, barrier-phased loop-locks).
//
//===----------------------------------------------------------------------===//

#include "replay/LogCodec.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace chimera;
using namespace chimera::workloads;

namespace {

struct ModeResults {
  uint64_t NativeHash = 0;
  uint64_t RecordHash = 0;
  uint64_t ReplayHash = 0;
  uint64_t Instructions = 0;
  std::vector<uint64_t> Output;
  std::vector<uint8_t> EncodedLog;
};

ModeResults runAtBatch(WorkloadKind Kind, unsigned Batch, uint64_t Seed) {
  core::PipelineConfig Cfg;
  Cfg.DispatchBatch = Batch;
  auto P = buildPipelineEx(Kind, 4, Cfg);
  EXPECT_TRUE(static_cast<bool>(P)) << P.error().message();

  ModeResults R;
  rt::ExecutionResult Nat = (*P)->runOriginalNative(Seed);
  EXPECT_TRUE(Nat.Ok) << Nat.Error;
  R.NativeHash = Nat.StateHash;
  R.Instructions = Nat.Stats.Instructions;
  R.Output = Nat.Output;

  rt::ExecutionResult Rec = (*P)->record(Seed);
  EXPECT_TRUE(Rec.Ok) << Rec.Error;
  R.RecordHash = Rec.StateHash;
  R.EncodedLog = replay::encodeLog(Rec.Log);

  rt::ExecutionResult Rep = (*P)->replay(Rec.Log);
  EXPECT_TRUE(Rep.Ok) << Rep.Error;
  R.ReplayHash = Rep.StateHash;
  EXPECT_EQ(Rec.StateHash, Rep.StateHash) << "record/replay divergence";
  return R;
}

void expectMatrixInvariant(WorkloadKind Kind, uint64_t Seed) {
  ModeResults Base = runAtBatch(Kind, 1, Seed);
  for (unsigned Batch : {16u, 256u}) {
    ModeResults At = runAtBatch(Kind, Batch, Seed);
    EXPECT_EQ(Base.NativeHash, At.NativeHash)
        << workloadInfo(Kind).Name << " native hash drifts at batch "
        << Batch;
    EXPECT_EQ(Base.RecordHash, At.RecordHash)
        << workloadInfo(Kind).Name << " record hash drifts at batch "
        << Batch;
    EXPECT_EQ(Base.ReplayHash, At.ReplayHash)
        << workloadInfo(Kind).Name << " replay hash drifts at batch "
        << Batch;
    EXPECT_EQ(Base.Instructions, At.Instructions)
        << workloadInfo(Kind).Name << " instruction count drifts at batch "
        << Batch;
    EXPECT_EQ(Base.Output, At.Output)
        << workloadInfo(Kind).Name << " output drifts at batch " << Batch;
    EXPECT_EQ(Base.EncodedLog, At.EncodedLog)
        << workloadInfo(Kind).Name
        << " encoded log is not byte-identical at batch " << Batch;
  }
}

} // namespace

TEST(DeterminismMatrix, PfscanBatchInvariant) {
  expectMatrixInvariant(WorkloadKind::Pfscan, 2012);
}

TEST(DeterminismMatrix, FftBatchInvariant) {
  expectMatrixInvariant(WorkloadKind::Fft, 2012);
}

TEST(DeterminismMatrix, RadixBatchInvariantSecondSeed) {
  expectMatrixInvariant(WorkloadKind::Radix, 1);
}
