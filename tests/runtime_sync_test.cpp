//===- tests/runtime_sync_test.cpp - Thread & sync semantics ---------------===//

#include "TestUtil.h"
#include "codegen/CodeGen.h"
#include "runtime/Machine.h"

#include <gtest/gtest.h>

using namespace chimera;

namespace {

rt::ExecutionResult runSource(const std::string &Source, uint64_t Seed = 1,
                              unsigned Cores = 4) {
    auto M = test::compileOrNull(Source, "t");
  if (!M)
    return {};
  rt::MachineOptions MO;
  MO.Seed = Seed;
  MO.NumCores = Cores;
  rt::Machine Machine(*M, MO);
  return Machine.run();
}

} // namespace

TEST(Sync, SpawnJoinReturnsAndRuns) {
  auto R = runSource("int g;\nvoid w(int v) { g = v; }\n"
                     "int main() { int t = spawn(w, 42); join(t); "
                     "output(g); return 0; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{42}));
  EXPECT_EQ(R.Stats.SpawnedThreads, 2u); // main + worker.
}

TEST(Sync, MutexProvidesExclusion) {
  // Without the mutex this counter would lose updates under contention;
  // with it the total is exact for every seed.
  const char *Src = "int counter;\nmutex m;\nint tids[4];\n"
                    "void w(int n) { int i; for (i = 0; i < n; i++) { "
                    "lock(m); counter = counter + 1; unlock(m); } }\n"
                    "int main() { int j; for (j = 0; j < 4; j++) { "
                    "tids[j] = spawn(w, 500); } "
                    "for (j = 0; j < 4; j++) { join(tids[j]); } "
                    "output(counter); return 0; }";
  for (uint64_t Seed : {1, 2, 3, 4, 5}) {
    auto R = runSource(Src, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<uint64_t>{2000})) << "seed " << Seed;
  }
}

TEST(Sync, RacyCounterLosesUpdatesOnSomeSeed) {
  // The same program without the lock: at least one seed must exhibit a
  // lost update (this validates that the simulator actually interleaves).
  const char *Src = "int counter;\nint tids[4];\n"
                    "void w(int n) { int i; for (i = 0; i < n; i++) { "
                    "counter = counter + 1; } }\n"
                    "int main() { int j; for (j = 0; j < 4; j++) { "
                    "tids[j] = spawn(w, 500); } "
                    "for (j = 0; j < 4; j++) { join(tids[j]); } "
                    "output(counter); return 0; }";
  bool SawLoss = false;
  for (uint64_t Seed = 1; Seed <= 20 && !SawLoss; ++Seed) {
    auto R = runSource(Src, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    SawLoss = R.Output[0] != 2000;
  }
  EXPECT_TRUE(SawLoss) << "no seed interleaved the racy counter";
}

TEST(Sync, BarrierSeparatesPhases) {
  // Worker A writes before the barrier; worker B reads after it. The
  // read must always see the write, on every seed.
  const char *Src = "int x;\nint seen;\nbarrier b(2);\n"
                    "void wa() { x = 99; barrier_wait(b); }\n"
                    "void wb() { barrier_wait(b); seen = x; }\n"
                    "int main() { int t1 = spawn(wa); int t2 = spawn(wb); "
                    "join(t1); join(t2); output(seen); return 0; }";
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto R = runSource(Src, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<uint64_t>{99})) << "seed " << Seed;
  }
}

TEST(Sync, BarrierMultipleGenerations) {
  const char *Src =
      "int sum;\nmutex m;\nbarrier b(3);\nint tids[3];\n"
      "void w(int id) { int r; for (r = 0; r < 5; r++) { "
      "lock(m); sum = sum + 1; unlock(m); barrier_wait(b); } }\n"
      "int main() { int j; for (j = 0; j < 3; j++) { "
      "tids[j] = spawn(w, j); } "
      "for (j = 0; j < 3; j++) { join(tids[j]); } "
      "output(sum); return 0; }";
  auto R = runSource(Src, 7);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{15}));
}

TEST(Sync, CondVarProducerConsumer) {
  const char *Src =
      "mutex m;\ncond c;\nint ready;\nint data;\nint got;\n"
      "void consumer() { lock(m); while (ready == 0) { cond_wait(c, m); } "
      "got = data; unlock(m); }\n"
      "int main() { int t = spawn(consumer); "
      "lock(m); data = 1234; ready = 1; cond_signal(c); unlock(m); "
      "join(t); output(got); return 0; }";
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto R = runSource(Src, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<uint64_t>{1234})) << "seed " << Seed;
  }
}

TEST(Sync, CondBroadcastWakesAll) {
  const char *Src =
      "mutex m;\ncond c;\nint go;\nint woke;\nint tids[3];\n"
      "void w() { lock(m); while (go == 0) { cond_wait(c, m); } "
      "woke = woke + 1; unlock(m); }\n"
      "int main() { int j; for (j = 0; j < 3; j++) { tids[j] = spawn(w); } "
      "lock(m); go = 1; cond_broadcast(c); unlock(m); "
      "for (j = 0; j < 3; j++) { join(tids[j]); } "
      "output(woke); return 0; }";
  auto R = runSource(Src, 3);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{3}));
}

TEST(Sync, UnlockingUnownedMutexFaults) {
  auto R = runSource("mutex m;\nint main() { unlock(m); return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("does not own"), std::string::npos);
}

TEST(Sync, CondWaitWithoutMutexFaults) {
  auto R = runSource("mutex m;\ncond c;\n"
                     "int main() { cond_wait(c, m); return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("without holding"), std::string::npos);
}

TEST(Sync, JoinInvalidTidFaults) {
  auto R = runSource("int main() { join(55); return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid thread id"), std::string::npos);
}

TEST(Sync, SelfDeadlockDetected) {
  auto R = runSource("mutex m;\nint main() { lock(m); lock(m); "
                     "return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos);
}

TEST(Sync, AbbaDeadlockDetected) {
  // Two threads acquiring two mutexes in opposite order deadlock on
  // some schedule; with a barrier forcing both to hold their first lock,
  // it deadlocks on every schedule.
  const char *Src = "mutex a;\nmutex b;\nbarrier bar(2);\n"
                    "void w1() { lock(a); barrier_wait(bar); lock(b); "
                    "unlock(b); unlock(a); }\n"
                    "void w2() { lock(b); barrier_wait(bar); lock(a); "
                    "unlock(a); unlock(b); }\n"
                    "int main() { int t1 = spawn(w1); int t2 = spawn(w2); "
                    "join(t1); join(t2); return 0; }";
  auto R = runSource(Src, 1);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos);
}

TEST(Sync, IoLatencyOverlapsAcrossThreads) {
  // Two workers each doing N network reads on 2 cores should take about
  // half the makespan of one worker doing 2N reads (I/O overlaps).
  const char *SrcSerial =
      "void w(int n) { int i; int s = 0; "
      "for (i = 0; i < n; i++) { s = s + net_recv(); } output(s & 1); }\n"
      "int main() { int t = spawn(w, 40); join(t); return 0; }";
  const char *SrcParallel =
      "void w(int n) { int i; int s = 0; "
      "for (i = 0; i < n; i++) { s = s + net_recv(); } output(s & 1); }\n"
      "int main() { int t1 = spawn(w, 20); int t2 = spawn(w, 20); "
      "join(t1); join(t2); return 0; }";
  auto Serial = runSource(SrcSerial, 3, /*Cores=*/2);
  auto Parallel = runSource(SrcParallel, 3, /*Cores=*/2);
  ASSERT_TRUE(Serial.Ok && Parallel.Ok);
  EXPECT_LT(Parallel.Stats.MakespanCycles,
            Serial.Stats.MakespanCycles * 2 / 3);
}

TEST(Sync, CpuParallelismScalesWithCores) {
  const char *Src =
      "int sink[8];\nint tids[4];\n"
      "void w(int id) { int i; int s = 0; "
      "for (i = 0; i < 20000; i++) { s = s + i * 3; } sink[id] = s; }\n"
      "int main() { int j; for (j = 0; j < 4; j++) { "
      "tids[j] = spawn(w, j); } "
      "for (j = 0; j < 4; j++) { join(tids[j]); } return 0; }";
  auto One = runSource(Src, 3, /*Cores=*/1);
  auto Four = runSource(Src, 3, /*Cores=*/4);
  ASSERT_TRUE(One.Ok && Four.Ok);
  // Four cores should be at least 2.5x faster than one.
  EXPECT_LT(Four.Stats.MakespanCycles * 5, One.Stats.MakespanCycles * 2);
}

TEST(Sync, YieldGivesUpTheCore) {
  auto R = runSource("int main() { yield(); output(7); return 0; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{7}));
}

TEST(Sync, ManyThreads) {
  const char *Src = "int done[12];\nint tids[12];\n"
                    "void w(int id) { done[id] = id + 1; }\n"
                    "int main() { int j; for (j = 0; j < 12; j++) { "
                    "tids[j] = spawn(w, j); } "
                    "for (j = 0; j < 12; j++) { join(tids[j]); } "
                    "int s = 0; for (j = 0; j < 12; j++) { s += done[j]; } "
                    "output(s); return 0; }";
  auto R = runSource(Src, 11, /*Cores=*/3);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<uint64_t>{78}));
}

TEST(Sync, NativeRunsAreSeedReproducible) {
  const char *Src = "int c;\nint tids[3];\n"
                    "void w(int n) { int i; for (i = 0; i < n; i++) { "
                    "c = c + 1; } }\n"
                    "int main() { int j; for (j = 0; j < 3; j++) { "
                    "tids[j] = spawn(w, 100); } "
                    "for (j = 0; j < 3; j++) { join(tids[j]); } "
                    "output(c); return 0; }";
  auto A = runSource(Src, 9);
  auto B = runSource(Src, 9);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.StateHash, B.StateHash);
  EXPECT_EQ(A.Stats.MakespanCycles, B.Stats.MakespanCycles);
}
