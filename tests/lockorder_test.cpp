//===- tests/lockorder_test.cpp - Whole-program lock-order analysis --------===//
//
// ISSUE 8 tentpole contract: the LockOrderGraph finds genuine
// deadlock-potential cycles among planned weak-locks and prints witness
// chains; enforce mode repairs them by coalescing until the re-audit
// proves acyclicity; certified plans elide weak-timeout polling with
// bit-identical logs; lying certificates (forged or stale) hard-gate
// every instrumented execution; and forced revocations under tiny
// timeouts record and replay deterministically, sequentially and in
// parallel.

#include "core/Pipeline.h"
#include "replay/LogReader.h"
#include "replay/ParallelReplayer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace chimera;

namespace {

// Two workers with inverted nesting over data-dependent indices. The
// data-dependent subscripts defeat the bounds analysis, so the planner
// emits unranged loop guards: w1 holds its outer x-locks while acquiring
// the y-locks in the inner loop, w2 the mirror image — a genuine
// may-be-held-while-acquiring cycle. The outer loops are long enough
// that profiling sees the workers concurrent (short loops degrade to
// function-covered pairs, whose entry locks cannot cycle).
const char *CyclicTwoLock =
    "int x[8];\nint y[8];\nint k[2];\n"
    "int w1() { int i = 0; while (i < 300) { int t = k[0]; "
    "x[t] = x[t] + 1; int j = 0; while (j < 4) { int u = k[1]; "
    "y[u] = y[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int w2() { int i = 0; while (i < 300) { int t = k[1]; "
    "y[t] = y[t] + 1; int j = 0; while (j < 4) { int u = k[0]; "
    "x[u] = x[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int main() { int t1 = spawn(w1); int t2 = spawn(w2); "
    "join(t1); join(t2); output(x[0] + y[0]); return 0; }";

// Rock-paper-scissors over three arrays: w1 holds x while acquiring y,
// w2 holds y while acquiring z, w3 holds z while acquiring x.
const char *CyclicThreeWay =
    "int x[8];\nint y[8];\nint z[8];\nint k[3];\n"
    "int w1() { int i = 0; while (i < 200) { int t = k[0]; "
    "x[t] = x[t] + 1; int j = 0; while (j < 3) { int u = k[1]; "
    "y[u] = y[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int w2() { int i = 0; while (i < 200) { int t = k[1]; "
    "y[t] = y[t] + 1; int j = 0; while (j < 3) { int u = k[2]; "
    "z[u] = z[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int w3() { int i = 0; while (i < 200) { int t = k[2]; "
    "z[t] = z[t] + 1; int j = 0; while (j < 3) { int u = k[0]; "
    "x[u] = x[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int main() { int t1 = spawn(w1); int t2 = spawn(w2); "
    "int t3 = spawn(w3); join(t1); join(t2); join(t3); "
    "output(x[0] + y[0] + z[0]); return 0; }";

// The two-lock cycle with doubled crowds: two threads per role, so
// revocation victims and beneficiaries contend in larger groups.
const char *CyclicCrowd =
    "int x[8];\nint y[8];\nint k[2];\n"
    "int w1() { int i = 0; while (i < 150) { int t = k[0]; "
    "x[t] = x[t] + 1; int j = 0; while (j < 4) { int u = k[1]; "
    "y[u] = y[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int w2() { int i = 0; while (i < 150) { int t = k[1]; "
    "y[t] = y[t] + 1; int j = 0; while (j < 4) { int u = k[0]; "
    "x[u] = x[u] + 1; j = j + 1; } i = i + 1; } return 0; }\n"
    "int main() { int a = spawn(w1); int b = spawn(w2); "
    "int c = spawn(w1); int d = spawn(w2); "
    "join(a); join(b); join(c); join(d); "
    "output(x[0] + y[0]); return 0; }";

// No lock is ever held while acquiring another: plain racy counter.
const char *AcyclicCounter =
    "int c;\nint tids[4];\n"
    "void w(int n) { int i; for (i = 0; i < n; i++) { int t = c; "
    "c = t + 1; } }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { "
    "tids[j] = spawn(w, 200); } for (j = 0; j < 4; j++) { "
    "join(tids[j]); } output(c); return 0; }";

std::unique_ptr<core::ChimeraPipeline>
pipelineFor(const char *Source, analysis::LockOrderMode Mode,
            uint64_t Timeout = 1000,
            obs::ObsMode Obs = obs::ObsMode::Off) {
  core::PipelineConfig Config;
  Config.ProfileRuns = 5;
  Config.SegmentBytes = 512;
  Config.CheckpointEvery = 64;
  Config.WeakLockTimeout = Timeout;
  Config.LockOrder = Mode;
  Config.Observability = Obs;
  auto P = core::ChimeraPipeline::create({.Eval = Source, .Config = Config});
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

void expectLogsEqual(const rt::ExecutionLog &A, const rt::ExecutionLog &B) {
  EXPECT_EQ(A.NumSyncObjects, B.NumSyncObjects);
  EXPECT_EQ(A.NumWeakLocks, B.NumWeakLocks);
  EXPECT_EQ(A.NumThreads, B.NumThreads);
  ASSERT_EQ(A.PerObject.size(), B.PerObject.size());
  for (size_t Obj = 0; Obj != A.PerObject.size(); ++Obj)
    EXPECT_EQ(A.PerObject[Obj], B.PerObject[Obj]) << "object " << Obj;
  ASSERT_EQ(A.PerThreadInputs.size(), B.PerThreadInputs.size());
  for (size_t Tid = 0; Tid != A.PerThreadInputs.size(); ++Tid) {
    ASSERT_EQ(A.PerThreadInputs[Tid].size(), B.PerThreadInputs[Tid].size());
    for (size_t I = 0; I != A.PerThreadInputs[Tid].size(); ++I) {
      EXPECT_EQ(A.PerThreadInputs[Tid][I].Kind,
                B.PerThreadInputs[Tid][I].Kind);
      EXPECT_EQ(A.PerThreadInputs[Tid][I].Value,
                B.PerThreadInputs[Tid][I].Value);
    }
  }
  ASSERT_EQ(A.Revocations.size(), B.Revocations.size());
  for (size_t I = 0; I != A.Revocations.size(); ++I) {
    EXPECT_EQ(A.Revocations[I].Tid, B.Revocations[I].Tid) << "rev " << I;
    EXPECT_EQ(A.Revocations[I].LockId, B.Revocations[I].LockId)
        << "rev " << I;
    EXPECT_EQ(A.Revocations[I].Instret, B.Revocations[I].Instret)
        << "rev " << I;
  }
}

std::vector<uint8_t> recordBytes(core::ChimeraPipeline &P,
                                 const std::string &Name, uint64_t Seed,
                                 uint64_t *RevocationsOut = nullptr) {
  std::string Path = ::testing::TempDir() + "chimera_lo_" + Name + ".clg";
  auto R = P.recordStreamed(Path, Seed);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.error().message());
  if (R && RevocationsOut)
    *RevocationsOut = R->Stats.Revocations;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::vector<uint8_t> Bytes{std::istreambuf_iterator<char>(In),
                             std::istreambuf_iterator<char>()};
  In.close();
  std::remove(Path.c_str());
  return Bytes;
}

replay::LogReader openReader(std::vector<uint8_t> Bytes) {
  auto Reader =
      replay::LogReader::open(std::move(Bytes), replay::LogReader::Options());
  EXPECT_TRUE(Reader.hasValue()) << (Reader ? "" : Reader.error().message());
  return Reader.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Static analysis: cycle detection, witness chains, certificates
//===----------------------------------------------------------------------===//

TEST(LockOrder, AuditFindsCycleWithWitnessChain) {
  auto P = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Audit);
  ASSERT_TRUE(P);
  const instrument::LockOrderAuditResult &A = P->lockOrderAudit();
  // Audit mode reports but does not reject cyclic plans.
  EXPECT_TRUE(A.ok()) << A.Failure.message();
  EXPECT_FALSE(A.Certified);
  EXPECT_GE(A.Stats.CyclesFeasible, 1u);
  EXPECT_NE(A.Report.find("cycle"), std::string::npos) << A.Report;
  EXPECT_NE(A.Report.find("while acquiring"), std::string::npos) << A.Report;

  const instrument::InstrumentationPlan &Plan = P->plan();
  EXPECT_TRUE(Plan.Certificate.Present);
  EXPECT_FALSE(Plan.Certificate.Acyclic);
  EXPECT_GE(Plan.Certificate.CyclesFound, 1u);
  EXPECT_EQ(Plan.Certificate.CoalescedLocks, 0u);
}

TEST(LockOrder, AcyclicProgramCertifiedUnderAudit) {
  auto P = pipelineFor(AcyclicCounter, analysis::LockOrderMode::Audit);
  ASSERT_TRUE(P);
  const instrument::LockOrderAuditResult &A = P->lockOrderAudit();
  EXPECT_TRUE(A.ok()) << A.Failure.message();
  EXPECT_TRUE(A.Certified);
  EXPECT_NE(A.Report.find("acyclic"), std::string::npos) << A.Report;
  EXPECT_TRUE(P->plan().Certificate.Acyclic);
}

TEST(LockOrder, OffModeCarriesNoCertificate) {
  auto P = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Off);
  ASSERT_TRUE(P);
  EXPECT_FALSE(P->plan().Certificate.Present);
  EXPECT_TRUE(P->lockOrderAudit().ok());
  EXPECT_FALSE(P->lockOrderAudit().Certified);
}

TEST(LockOrder, EnforceRepairsCycleByCoalescing) {
  auto P = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Enforce);
  ASSERT_TRUE(P);
  const instrument::InstrumentationPlan &Plan = P->plan();
  EXPECT_TRUE(Plan.Certificate.Present);
  EXPECT_TRUE(Plan.Certificate.Acyclic);
  EXPECT_GE(Plan.Certificate.CyclesFound, 1u);
  EXPECT_GE(Plan.Certificate.CoalescedLocks, 1u);
  EXPECT_GE(Plan.Certificate.RepairRounds, 1u);

  const instrument::LockOrderAuditResult &A = P->lockOrderAudit();
  EXPECT_TRUE(A.ok()) << A.Failure.message();
  EXPECT_TRUE(A.Certified);

  // The repaired plan records and replays deterministically.
  auto Outcome = P->recordAndReplay(7);
  ASSERT_TRUE(Outcome.Record.Ok) << Outcome.Record.Error;
  ASSERT_TRUE(Outcome.Replay.Ok) << Outcome.Replay.Error;
  EXPECT_TRUE(Outcome.Deterministic);
}

//===----------------------------------------------------------------------===//
// Certified plans: revocation-free and poll-elision bit-identical
//===----------------------------------------------------------------------===//

TEST(LockOrder, CertifiedPlanElidesPollingBitIdentically) {
  // Tiny timeout: under an unsound elision any stall would revoke (or
  // hang). The certificate proves no weak-lock cycle can form, and the
  // sync-delimited weak regions mean an instrumented holder only ever
  // blocks on another weak acquire — so zero revocations force-polled
  // or elided, and the logs match bit for bit.
  auto P = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Enforce,
                       /*Timeout=*/1000);
  ASSERT_TRUE(P);
  ASSERT_TRUE(P->lockOrderAudit().Certified);

  rt::ExecutionResult Elided = P->record(11);
  ASSERT_TRUE(Elided.Ok) << Elided.Error;
  EXPECT_EQ(Elided.Stats.Revocations, 0u);

  P->setForceWeakPolling(true);
  rt::ExecutionResult Polled = P->record(11);
  P->setForceWeakPolling(false);
  ASSERT_TRUE(Polled.Ok) << Polled.Error;
  EXPECT_EQ(Polled.Stats.Revocations, 0u);

  EXPECT_EQ(Elided.StateHash, Polled.StateHash);
  EXPECT_EQ(Elided.Output, Polled.Output);
  expectLogsEqual(Elided.Log, Polled.Log);
}

//===----------------------------------------------------------------------===//
// Certificate lies hard-gate execution
//===----------------------------------------------------------------------===//

TEST(LockOrder, ForgedCertificateRejected) {
  auto P = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Audit);
  ASSERT_TRUE(P);
  // Claim acyclicity on a plan the recomputation proves cyclic. The
  // fingerprint still matches (certificate fields are excluded from it),
  // so only the acyclicity cross-check can catch this.
  P->corruptPlanForTest([](instrument::InstrumentationPlan &Plan) {
    Plan.Certificate.Acyclic = true;
  });
  const instrument::LockOrderAuditResult &A = P->lockOrderAudit();
  EXPECT_FALSE(A.ok());
  EXPECT_NE(A.Failure.message().find("forged"), std::string::npos)
      << A.Failure.message();
  rt::ExecutionResult R = P->record(3);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("forged"), std::string::npos) << R.Error;
}

TEST(LockOrder, StaleCertificateRejected) {
  auto P = pipelineFor(AcyclicCounter, analysis::LockOrderMode::Enforce);
  ASSERT_TRUE(P);
  // Edit the plan content after stamping: the fingerprint no longer
  // matches, so the certificate is stale no matter what it claims.
  P->corruptPlanForTest([](instrument::InstrumentationPlan &Plan) {
    if (!Plan.Locks.empty())
      Plan.Locks[0].Name += ":edited";
  });
  const instrument::LockOrderAuditResult &A = P->lockOrderAudit();
  EXPECT_FALSE(A.ok());
  EXPECT_NE(A.Failure.message().find("stale"), std::string::npos)
      << A.Failure.message();
  rt::ExecutionResult R = P->record(3);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("stale"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// Observability: poll attribution and analysis counters
//===----------------------------------------------------------------------===//

TEST(LockOrder, ObsCountersTrackPollingAndAnalysis) {
  // Uncertified cyclic plan at a tiny timeout: polling runs and revokes.
  auto Audit = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Audit,
                           /*Timeout=*/1000, obs::ObsMode::Full);
  ASSERT_TRUE(Audit);
  rt::ExecutionResult R = Audit->record(5);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Stats.Revocations, 1u);
  auto SnapA = Audit->metrics();
  ASSERT_TRUE(SnapA.hasValue());
  EXPECT_GT(SnapA->value("runtime.record.weak.poll"), 0);
  EXPECT_EQ(SnapA->value("runtime.record.weak.poll_elided_runs"), 0);
  EXPECT_GE(SnapA->value("pipeline.lockorder.edges"), 1);
  EXPECT_GE(SnapA->value("pipeline.lockorder.cycles_found"), 1);
  EXPECT_EQ(SnapA->value("pipeline.lockorder.certified_plans"), 0);

  // Certified enforce plan: the poll cadence is elided outright.
  auto Enforce = pipelineFor(CyclicTwoLock, analysis::LockOrderMode::Enforce,
                             /*Timeout=*/1000, obs::ObsMode::Full);
  ASSERT_TRUE(Enforce);
  rt::ExecutionResult E = Enforce->record(5);
  ASSERT_TRUE(E.Ok) << E.Error;
  EXPECT_EQ(E.Stats.Revocations, 0u);
  auto SnapE = Enforce->metrics();
  ASSERT_TRUE(SnapE.hasValue());
  EXPECT_EQ(SnapE->value("runtime.record.weak.poll"), 0);
  EXPECT_GE(SnapE->value("runtime.record.weak.poll_elided_runs"), 1);
  EXPECT_GE(SnapE->value("pipeline.lockorder.locks_coalesced"), 1);
  EXPECT_GE(SnapE->value("pipeline.lockorder.certified_plans"), 1);
}

//===----------------------------------------------------------------------===//
// Forced-revocation determinism matrix (satellite 3)
//===----------------------------------------------------------------------===//

namespace {

struct MatrixCase {
  const char *Name;
  const char *Source;
};

const MatrixCase MatrixCases[] = {
    {"two_lock", CyclicTwoLock},
    {"three_way", CyclicThreeWay},
    {"crowd", CyclicCrowd},
};

} // namespace

TEST(LockOrder, ForcedRevocationDeterminismMatrix) {
  // Audit mode keeps the cyclic plans as planned, so tiny timeouts
  // genuinely revoke. Every cell must replay bit-identically —
  // including the revocation stream — sequentially and epoch-parallel.
  uint64_t TotalRevocations = 0;
  for (const MatrixCase &C : MatrixCases) {
    for (uint64_t Timeout : {uint64_t(1000), uint64_t(10000)}) {
      SCOPED_TRACE(std::string(C.Name) + " timeout=" +
                   std::to_string(Timeout));
      auto P = pipelineFor(C.Source, analysis::LockOrderMode::Audit,
                           Timeout);
      ASSERT_TRUE(P);
      uint64_t Revs = 0;
      std::vector<uint8_t> Bytes = recordBytes(
          *P, std::string(C.Name) + "_" + std::to_string(Timeout), 13,
          &Revs);
      TotalRevocations += Revs;

      replay::LogReader SeqReader = openReader(Bytes);
      replay::LogReader::RecoveredLog RL = SeqReader.recover();
      rt::ExecutionResult Seq = P->replay(RL.Log);
      ASSERT_TRUE(Seq.Ok) << Seq.Error;
      ASSERT_EQ(RL.Log.Revocations.size(), Revs);

      for (unsigned Jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(Jobs));
        replay::LogReader Reader = openReader(Bytes);
        replay::ParallelReplayer::Result Res =
            P->replayParallel(Reader, Jobs);
        EXPECT_TRUE(Res.Exec.Ok) << Res.Exec.Error;
        EXPECT_EQ(Res.Exec.StateHash, Seq.StateHash);
        EXPECT_EQ(Res.Exec.Output, Seq.Output);
        expectLogsEqual(Res.Log, RL.Log);
      }
    }
  }
  // The matrix is vacuous if nothing ever revoked.
  EXPECT_GT(TotalRevocations, 0u);
}

//===----------------------------------------------------------------------===//
// Nine-workload dynamic cross-check of the static certificate
//===----------------------------------------------------------------------===//

TEST(LockOrder, NineWorkloadsRevocationFreeWhenCertified) {
  // Enforce + tiny timeout on every paper workload: the certificate
  // must hold dynamically — zero revocations with polling forced on,
  // and the elided run bit-identical to the polled one.
  for (workloads::WorkloadKind Kind : workloads::allWorkloads()) {
    const char *Name = workloads::workloadInfo(Kind).Name;
    SCOPED_TRACE(Name);
    core::PipelineConfig Config;
    Config.ProfileRuns = 5;
    Config.WeakLockTimeout = 1000;
    Config.LockOrder = analysis::LockOrderMode::Enforce;
    auto P = workloads::buildPipelineEx(Kind, /*Workers=*/4, Config);
    ASSERT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
    ASSERT_TRUE((*P)->lockOrderAudit().Certified)
        << (*P)->lockOrderAudit().Failure.message();

    rt::ExecutionResult Elided = (*P)->record(1);
    ASSERT_TRUE(Elided.Ok) << Elided.Error;
    EXPECT_EQ(Elided.Stats.Revocations, 0u) << Name;

    (*P)->setForceWeakPolling(true);
    rt::ExecutionResult Polled = (*P)->record(1);
    ASSERT_TRUE(Polled.Ok) << Polled.Error;
    EXPECT_EQ(Polled.Stats.Revocations, 0u) << Name;

    EXPECT_EQ(Elided.StateHash, Polled.StateHash) << Name;
    EXPECT_EQ(Elided.Output, Polled.Output) << Name;
    expectLogsEqual(Elided.Log, Polled.Log);
  }
}
