//===- tests/parallel_replay_test.cpp - Epoch-parallel replay --------------===//
//
// The tentpole contract: ParallelReplayer is bit-identical to
// sequential recovery + cold replay for ANY job count — final state
// hash, output, merged log, and fault behavior — across a jobs x
// CheckpointEvery x workload matrix, including logs whose tail must be
// recovered.

#include "core/Pipeline.h"
#include "replay/LogReader.h"
#include "replay/ParallelReplayer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace chimera;

namespace {

// Three workloads with different replay profiles: pure weak-lock
// contention, mutex/condvar/input traffic (threads block at condvars
// across checkpoint boundaries), and barrier-phased array updates.
const char *RacyCounter =
    "int c;\nint hist[4];\nint tids[4];\n"
    "void w(int id, int n) { int i; int h = 0; for (i = 0; i < n; i++) { "
    "int t = c; c = t + 1; h = (h * 31 + t) & 1048575; } "
    "hist[id] = h; }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { "
    "tids[j] = spawn(w, j, 400); } "
    "for (j = 0; j < 4; j++) { join(tids[j]); } "
    "output(c); int k; for (k = 0; k < 4; k++) { output(hist[k]); } "
    "return 0; }";

const char *ProducerConsumer =
    "int q[32];\nint qh;\nint qt;\nint done;\nint consumed;\n"
    "mutex m;\ncond cv;\nbarrier b(3);\nint tids[3];\n"
    "void producer() { int i; for (i = 0; i < 24; i++) { lock(m); "
    "q[qt & 31] = input() & 255; qt++; cond_signal(cv); unlock(m); } "
    "lock(m); done = 1; cond_broadcast(cv); unlock(m); barrier_wait(b); }\n"
    "void consumer() { int run = 1; while (run) { lock(m); "
    "while (qh == qt && done == 0) { cond_wait(cv, m); } "
    "if (qh < qt) { consumed = consumed + q[qh & 31]; qh++; } "
    "else { run = 0; } unlock(m); } barrier_wait(b); }\n"
    "int main() { tids[0] = spawn(producer); tids[1] = spawn(consumer); "
    "tids[2] = spawn(consumer); int j; "
    "for (j = 0; j < 3; j++) { join(tids[j]); } output(consumed); "
    "return 0; }";

const char *BarrierPhases =
    "int a[8];\nint tids[4];\nbarrier b(4);\n"
    "void w(int id) { int p; for (p = 0; p < 6; p++) { int i; "
    "for (i = 0; i < 60; i++) { int s = (id + p) & 7; a[s] = a[s] + i; } "
    "barrier_wait(b); } }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { tids[j] = spawn(w, j); } "
    "for (j = 0; j < 4; j++) { join(tids[j]); } "
    "int k; for (k = 0; k < 8; k++) { output(a[k]); } return 0; }";

std::unique_ptr<core::ChimeraPipeline>
pipelineFor(const char *Source, uint64_t CheckpointEvery) {
  core::PipelineConfig Config;
  Config.ProfileRuns = 5;
  Config.AnalysisJobs = 8; // Real pool: epochs must actually overlap.
  Config.SegmentBytes = 512;
  Config.CheckpointEvery = CheckpointEvery;
  auto P = core::ChimeraPipeline::create({.Eval = Source, .Config = Config});
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.error().message());
  return P ? P.take() : nullptr;
}

std::vector<uint8_t> recordBytes(core::ChimeraPipeline &P,
                                 const std::string &Name, uint64_t Seed) {
  std::string Path = ::testing::TempDir() + "chimera_" + Name + ".clg";
  auto R = P.recordStreamed(Path, Seed);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.error().message());
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::vector<uint8_t> Bytes{std::istreambuf_iterator<char>(In),
                             std::istreambuf_iterator<char>()};
  In.close();
  std::remove(Path.c_str());
  return Bytes;
}

replay::LogReader openReader(std::vector<uint8_t> Bytes) {
  auto Reader =
      replay::LogReader::open(std::move(Bytes), replay::LogReader::Options());
  EXPECT_TRUE(Reader.hasValue()) << (Reader ? "" : Reader.error().message());
  return Reader.take();
}

void expectLogsEqual(const rt::ExecutionLog &A, const rt::ExecutionLog &B) {
  EXPECT_EQ(A.NumSyncObjects, B.NumSyncObjects);
  EXPECT_EQ(A.NumWeakLocks, B.NumWeakLocks);
  EXPECT_EQ(A.NumThreads, B.NumThreads);
  ASSERT_EQ(A.PerObject.size(), B.PerObject.size());
  for (size_t Obj = 0; Obj != A.PerObject.size(); ++Obj)
    EXPECT_EQ(A.PerObject[Obj], B.PerObject[Obj]) << "object " << Obj;
  ASSERT_EQ(A.PerThreadInputs.size(), B.PerThreadInputs.size());
  for (size_t Tid = 0; Tid != A.PerThreadInputs.size(); ++Tid) {
    ASSERT_EQ(A.PerThreadInputs[Tid].size(), B.PerThreadInputs[Tid].size())
        << "thread " << Tid;
    for (size_t I = 0; I != A.PerThreadInputs[Tid].size(); ++I) {
      EXPECT_EQ(A.PerThreadInputs[Tid][I].Kind, B.PerThreadInputs[Tid][I].Kind);
      EXPECT_EQ(A.PerThreadInputs[Tid][I].Value,
                B.PerThreadInputs[Tid][I].Value);
    }
  }
  ASSERT_EQ(A.Revocations.size(), B.Revocations.size());
  for (size_t I = 0; I != A.Revocations.size(); ++I) {
    EXPECT_EQ(A.Revocations[I].Tid, B.Revocations[I].Tid);
    EXPECT_EQ(A.Revocations[I].LockId, B.Revocations[I].LockId);
    EXPECT_EQ(A.Revocations[I].Instret, B.Revocations[I].Instret);
  }
}

/// The sequential reference every parallel outcome is pinned against.
struct SeqRef {
  rt::ExecutionResult Exec;
  rt::ExecutionLog Log;
};

SeqRef sequentialReference(core::ChimeraPipeline &P,
                           const std::vector<uint8_t> &Bytes) {
  SeqRef Ref;
  replay::LogReader Reader = openReader(Bytes);
  replay::LogReader::RecoveredLog RL = Reader.recover();
  Ref.Log = std::move(RL.Log);
  Ref.Exec = P.replay(Ref.Log);
  return Ref;
}

/// Runs replayParallel at every job count and pins each result —
/// success bit, error string, state hash, output, and the merged log —
/// to the sequential reference.
void expectMatrixMatchesSequential(core::ChimeraPipeline &P,
                                   const std::vector<uint8_t> &Bytes,
                                   const char *What) {
  SeqRef Ref = sequentialReference(P, Bytes);
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(std::string(What) + ", jobs=" + std::to_string(Jobs));
    replay::LogReader Reader = openReader(Bytes);
    replay::ParallelReplayer::Result Res = P.replayParallel(Reader, Jobs);
    EXPECT_EQ(Res.Exec.Ok, Ref.Exec.Ok);
    EXPECT_EQ(Res.Exec.Error, Ref.Exec.Error);
    EXPECT_EQ(Res.Exec.StateHash, Ref.Exec.StateHash);
    EXPECT_EQ(Res.Exec.Output, Ref.Exec.Output);
    expectLogsEqual(Res.Log, Ref.Log);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// The determinism matrix: jobs x CheckpointEvery x workload.
//===----------------------------------------------------------------------===//

class EpochMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpochMatrix, RacyCounterBitIdenticalAtEveryJobCount) {
  auto P = pipelineFor(RacyCounter, GetParam());
  ASSERT_NE(P, nullptr);
  // Param-unique file name: ctest runs the instantiations of one TEST_P
  // as separate concurrent processes, which must not share a temp file.
  auto Bytes =
      recordBytes(*P, "preplay_racy_" + std::to_string(GetParam()), 7);
  expectMatrixMatchesSequential(*P, Bytes, "racy");
}

TEST_P(EpochMatrix, ProducerConsumerBitIdenticalAtEveryJobCount) {
  auto P = pipelineFor(ProducerConsumer, GetParam());
  ASSERT_NE(P, nullptr);
  auto Bytes =
      recordBytes(*P, "preplay_pc_" + std::to_string(GetParam()), 11);
  expectMatrixMatchesSequential(*P, Bytes, "producer-consumer");
}

TEST_P(EpochMatrix, BarrierPhasesBitIdenticalAtEveryJobCount) {
  auto P = pipelineFor(BarrierPhases, GetParam());
  ASSERT_NE(P, nullptr);
  auto Bytes =
      recordBytes(*P, "preplay_barrier_" + std::to_string(GetParam()), 13);
  expectMatrixMatchesSequential(*P, Bytes, "barrier");
}

// CheckpointEvery: small (many epochs), the default, and
// larger-than-log (zero checkpoints -> exactly one epoch).
INSTANTIATE_TEST_SUITE_P(CheckpointEvery, EpochMatrix,
                         ::testing::Values(64, 4096,
                                           uint64_t(1) << 40));

//===----------------------------------------------------------------------===//
// Damaged logs: fault behavior is pinned to sequential recovery.
//===----------------------------------------------------------------------===//

TEST(EpochFaults, TruncatedTailMatchesSequential) {
  // Chopping the tail destroys the CIDX footer and the last segment;
  // both paths must agree on what the recovered prefix replays to.
  auto P = pipelineFor(RacyCounter, 64);
  ASSERT_NE(P, nullptr);
  auto Bytes = recordBytes(*P, "preplay_trunc", 7);
  ASSERT_GT(Bytes.size(), 200u);
  for (size_t Chop : {size_t(1), size_t(40), Bytes.size() / 2}) {
    SCOPED_TRACE("chop=" + std::to_string(Chop));
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.end() - Chop);
    expectMatrixMatchesSequential(*P, Cut, "truncated");
  }
}

TEST(EpochFaults, TruncatedBeforeMetaFailsGracefully) {
  // 100 bytes = the 16-byte file header plus a sliver of segment 0:
  // recovery yields a log with no Meta record and therefore no
  // PerObject tables. Every job count must reject it with a clean
  // error — never hand the table-less log to a machine (this was a
  // segfault: the machine's shape check was assert-only).
  auto P = pipelineFor(RacyCounter, 64);
  ASSERT_NE(P, nullptr);
  auto Bytes = recordBytes(*P, "preplay_nometa", 7);
  ASSERT_GT(Bytes.size(), 100u);
  std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + 100);
  for (unsigned Jobs : {1u, 4u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    replay::LogReader Reader = openReader(Cut);
    replay::ParallelReplayer::Result Res = P->replayParallel(Reader, Jobs);
    EXPECT_FALSE(Res.Exec.Ok);
    EXPECT_NE(Res.Exec.Error.find("Meta"), std::string::npos)
        << Res.Exec.Error;
    EXPECT_FALSE(Res.LogComplete);
    EXPECT_FALSE(Res.LogError.empty());
  }
}

TEST(EpochFaults, MidFileBitFlipMatchesSequential) {
  // A flip in the middle keeps the footer structurally valid but breaks
  // a segment the checkpoint chain depends on; the chain validation
  // must fall back and both paths must still agree.
  auto P = pipelineFor(RacyCounter, 64);
  ASSERT_NE(P, nullptr);
  auto Bytes = recordBytes(*P, "preplay_flip", 7);
  for (double Frac : {0.3, 0.6, 0.9}) {
    size_t Pos = static_cast<size_t>(Bytes.size() * Frac);
    SCOPED_TRACE("flip at " + std::to_string(Pos));
    std::vector<uint8_t> Bad = Bytes;
    Bad[Pos] ^= 0x40;
    expectMatrixMatchesSequential(*P, Bad, "bitflip");
  }
}

//===----------------------------------------------------------------------===//
// The parallel path actually engages (it is not fallback all the way
// down), and reports what it did.
//===----------------------------------------------------------------------===//

TEST(EpochReporting, ManyCheckpointsYieldManyEpochs) {
  auto P = pipelineFor(RacyCounter, 64);
  ASSERT_NE(P, nullptr);
  auto Bytes = recordBytes(*P, "preplay_engage", 7);
  {
    replay::LogReader Reader = openReader(Bytes);
    ASSERT_TRUE(Reader.hasCheckpointIndex());
    ASSERT_GT(Reader.checkpoints().size(), 7u)
        << "program too small for an 8-way epoch split";
  }
  replay::LogReader Reader = openReader(Bytes);
  auto Res = P->replayParallel(Reader, 8);
  ASSERT_TRUE(Res.Exec.Ok) << Res.Exec.Error;
  EXPECT_EQ(Res.Epochs, 8u);
  EXPECT_TRUE(Res.UsedCheckpointIndex);
  EXPECT_FALSE(Res.FellBackSequential);
  EXPECT_EQ(Res.EpochWallUs.size(), Res.Epochs);
  // Every boundary is checked at least twice: merged-log cursors and
  // the replayed epoch's state hash.
  EXPECT_GE(Res.StitchChecks, 2u * (Res.Epochs - 1));
}

TEST(EpochReporting, NoCheckpointsMeansOneEpoch) {
  auto P = pipelineFor(RacyCounter, uint64_t(1) << 40);
  ASSERT_NE(P, nullptr);
  auto Bytes = recordBytes(*P, "preplay_single", 7);
  replay::LogReader Reader = openReader(Bytes);
  auto Res = P->replayParallel(Reader, 8);
  ASSERT_TRUE(Res.Exec.Ok) << Res.Exec.Error;
  EXPECT_EQ(Res.Epochs, 1u);
  EXPECT_FALSE(Res.FellBackSequential);
}

TEST(EpochReporting, StitcherPublishesMetrics) {
  core::PipelineConfig Config;
  Config.ProfileRuns = 5;
  Config.AnalysisJobs = 4;
  Config.SegmentBytes = 512;
  Config.CheckpointEvery = 64;
  Config.Observability = obs::ObsMode::Full;
  auto MaybeP = core::ChimeraPipeline::create(
      {.Eval = RacyCounter, .Config = Config});
  ASSERT_TRUE(MaybeP.hasValue()) << MaybeP.error().message();
  auto P = MaybeP.take();
  auto Bytes = recordBytes(*P, "preplay_metrics", 7);
  replay::LogReader Reader = openReader(Bytes);
  auto Res = P->replayParallel(Reader, 4);
  ASSERT_TRUE(Res.Exec.Ok) << Res.Exec.Error;
  auto Snap = P->metrics();
  ASSERT_TRUE(Snap.hasValue());
  EXPECT_EQ(Snap->value("replay.parallel.epochs", -1),
            static_cast<int64_t>(Res.Epochs));
  EXPECT_EQ(Snap->value("replay.parallel.stitch_checks", -1),
            static_cast<int64_t>(Res.StitchChecks));
  EXPECT_EQ(Snap->value("replay.parallel.fallback_sequential", -1), 0);
  EXPECT_GT(Snap->value("replay.parallel.epoch_wall_us_total", -1), 0);
}
