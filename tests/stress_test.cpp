//===- tests/stress_test.cpp - Stress harness unit tests -------------------===//
//
// The harness has to be trustworthy before its verdicts mean anything:
// derivation is a pure function of (base seed, index), the Minimizer
// converges deterministically to a case that still fails the same way,
// repro files round-trip byte-exactly, and a pinned smoke campaign
// passes with a report that is identical for every job count.
//
//===----------------------------------------------------------------------===//

#include "stress/Stress.h"

#include "core/Pipeline.h"
#include "instrument/LockOrderAuditor.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace chimera;
using namespace chimera::stress;

namespace {

/// Field-complete equality via the repro format (it serializes every
/// TrialCase field, so equal text == equal case).
void expectCasesEqual(const TrialCase &A, const TrialCase &B) {
  EXPECT_EQ(formatRepro(A), formatRepro(B));
}

TrialCase miniCase(OracleKind Oracle) {
  TrialCase C;
  C.Oracle = Oracle;
  C.SourceName = miniSourceNames().front();
  C.Source = *miniSource(C.SourceName);
  C.Config.Name = C.SourceName;
  C.Config.ProfileRuns = 2;
  C.Config.ProfileCores = 2;
  C.Config.AnalysisJobs = 1;
  C.Config.NumCores = 2;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Derivation
//===----------------------------------------------------------------------===//

TEST(Derivation, IsPureInBaseSeedAndIndex) {
  for (uint64_t I = 0; I < 24; ++I)
    expectCasesEqual(deriveCase(7, I), deriveCase(7, I));
}

TEST(Derivation, DifferentIndicesDiffer) {
  unsigned Distinct = 0;
  std::string First = formatRepro(deriveCase(1, 0));
  for (uint64_t I = 1; I < 16; ++I)
    Distinct += formatRepro(deriveCase(1, I)) != First;
  EXPECT_GT(Distinct, 12u);
}

TEST(Derivation, DerivedConfigsValidate) {
  for (uint64_t I = 0; I < 64; ++I) {
    TrialCase C = deriveCase(3, I);
    EXPECT_FALSE(bool(C.Config.validate())) << "index " << I;
    EXPECT_FALSE(C.Source.empty()) << "index " << I;
  }
}

TEST(Derivation, ReachesTheAdversarialCorners) {
  // The campaign only means something if the hostile regions actually
  // come up: tiny revocation-provoking timeouts, single-event
  // checkpoint cadence, unit dispatch batches, degenerate quanta.
  bool TinyTimeout = false, DenseCheckpoints = false, UnitBatch = false,
       UnitQuantum = false, Fault = false;
  for (uint64_t I = 0; I < 200; ++I) {
    TrialCase C = deriveCase(5, I);
    TinyTimeout |= C.Config.WeakLockTimeout <= 2000;
    DenseCheckpoints |= C.Config.CheckpointEvery == 1;
    UnitBatch |= C.Config.DispatchBatch == 1;
    UnitQuantum |= C.Config.QuantumMin == 1;
    Fault |= C.Fault.K != FaultSpec::Kind::None;
  }
  EXPECT_TRUE(TinyTimeout);
  EXPECT_TRUE(DenseCheckpoints);
  EXPECT_TRUE(UnitBatch);
  EXPECT_TRUE(UnitQuantum);
  EXPECT_TRUE(Fault);
}

TEST(Derivation, TinyTimeoutsActuallyRevoke) {
  // Guard against the fuzzer silently losing its sharpest tooth: the
  // cross-order catalog source under a tiny weak-lock timeout (with
  // the cyclic plan kept as planned — Audit, not Enforce) must
  // produce real revocation traffic in the recorded log. Revocations
  // only fire for genuinely stuck holders, so this needs the nested
  // cross-ordered guard regions; a flat racy loop can never revoke.
  TrialCase C = miniCase(OracleKind::RecordReplay);
  C.SourceName = "cross-order";
  C.Source = *miniSource(C.SourceName);
  C.Config.Name = C.SourceName;
  C.Config.WeakLockTimeout = 2000;
  C.Config.NumCores = 4;
  C.Config.LockOrder = analysis::LockOrderMode::Audit;
  auto P = core::ChimeraPipeline::create(
      {.Eval = C.Source, .Config = C.Config});
  ASSERT_TRUE(P.hasValue()) << P.error().message();
  auto R = (*P)->record(11);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Stats.Revocations, 0u)
      << "tiny timeouts no longer provoke revocations — the stress "
         "campaign lost its revocation coverage";
  // And the very trial the campaign would run on this case still
  // holds its record/replay promise with revocations in the stream.
  TrialResult T = runTrial(C);
  EXPECT_TRUE(T.Passed) << T.Failure;
}

//===----------------------------------------------------------------------===//
// Trials
//===----------------------------------------------------------------------===//

TEST(Trial, RecordReplayPassesOnCatalogSource) {
  TrialResult R = runTrial(miniCase(OracleKind::RecordReplay));
  EXPECT_TRUE(R.Passed) << R.Failure;
  EXPECT_NE(R.RecordHash, 0u);
}

TEST(Trial, InvalidConfigFailsWithConfigClass) {
  TrialCase C = miniCase(OracleKind::RecordReplay);
  C.Config.QuantumMin = 0;
  TrialResult R = runTrial(C);
  ASSERT_FALSE(R.Passed);
  EXPECT_EQ(failureClass(R.Failure), "config");
}

TEST(Trial, ResultIsDeterministic) {
  TrialCase C = miniCase(OracleKind::StreamedLog);
  C.Config.SegmentBytes = 512;
  C.Config.CheckpointEvery = 3;
  TrialResult A = runTrial(C);
  TrialResult B = runTrial(C);
  EXPECT_EQ(A.Passed, B.Passed);
  EXPECT_EQ(A.Failure, B.Failure);
  EXPECT_EQ(A.RecordHash, B.RecordHash);
}

TEST(Trial, FaultApplicationIsExact) {
  std::vector<uint8_t> Bytes = {0x00, 0xff, 0x10};
  FaultSpec Flip{FaultSpec::Kind::FlipBit, /*Offset=*/9}; // bit 1 of byte 1
  applyFault(Bytes, Flip);
  EXPECT_EQ(Bytes, (std::vector<uint8_t>{0x00, 0xfd, 0x10}));
  FaultSpec Trunc{FaultSpec::Kind::Truncate, /*Offset=*/7}; // 7 % 3 == 1
  applyFault(Bytes, Trunc);
  EXPECT_EQ(Bytes, (std::vector<uint8_t>{0x00}));
  FaultSpec None;
  applyFault(Bytes, None);
  EXPECT_EQ(Bytes.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Campaign-found regressions (each pinned from its minimized repro)
//===----------------------------------------------------------------------===//

TEST(Regression, PlanIsIndependentOfExecutionScheduleKnobs) {
  // Minimized from the 5000-seed campaign (base seed 101, trial 1095,
  // replay-perturbed on the apache workload): profiling leaked the
  // execution-only DispatchBatch/Quantum* knobs into its native runs,
  // so the instrumentation plan — and with it the module's weak-lock
  // table sizes — varied with the run schedule even though
  // planCacheKey excludes those knobs. A log recorded at the default
  // quantum then could not even be OPENED for replay by a pipeline
  // configured at quantum 1 ("replay log does not match this module"),
  // and a warm artifact cache could serve a plan cold compute would
  // not produce. Profiling must use a fixed schedule environment.
  auto Req =
      workloads::pipelineRequest(workloads::WorkloadKind::Apache, 2);
  core::PipelineConfig Base = Req.Config;
  Base.ProfileRuns = 2;
  Base.ProfileCores = 2;
  Base.ProfileSeedBase = 92001;
  Base.AnalysisJobs = 1;
  Base.NumCores = 1;

  core::PipelineConfig Perturbed = Base;
  Perturbed.QuantumMin = 1;
  Perturbed.QuantumMax = 1;
  Perturbed.DispatchBatch = 1;

  auto A = core::ChimeraPipeline::create(
      {Req.Eval, Req.Profile, Base, "regress-a"});
  auto B = core::ChimeraPipeline::create(
      {Req.Eval, Req.Profile, Perturbed, "regress-b"});
  ASSERT_TRUE(A.hasValue()) << A.error().message();
  ASSERT_TRUE(B.hasValue()) << B.error().message();

  // The plan itself must not vary with execution-only knobs...
  EXPECT_EQ(instrument::planFingerprint((*A)->plan()),
            instrument::planFingerprint((*B)->plan()));

  // ...so a log recorded under one schedule replays under the other.
  rt::ExecutionResult Rec = (*A)->record(1);
  ASSERT_TRUE(Rec.Ok) << Rec.Error;
  rt::ExecutionResult Rep = (*B)->replay(Rec.Log);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.StateHash, Rec.StateHash);
  EXPECT_EQ(Rep.Output, Rec.Output);

  // And the campaign trial that found it stays green.
  TrialCase C;
  C.Oracle = OracleKind::ReplayPerturbed;
  C.SourceName = "apache";
  C.Source = Req.Eval;
  C.Profile = Req.Profile;
  C.Config = Base;
  C.Config.Name = C.SourceName;
  C.AltDispatchBatch = 1;
  C.AltQuantumMin = 1;
  C.AltQuantumMax = 1;
  TrialResult R = runTrial(C);
  EXPECT_TRUE(R.Passed) << R.Failure;
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(Minimizer, ConvergesToMinimalFailingKnobs) {
  // Synthetic predicate: the "bug" needs at least two simulated cores.
  TrialCase C = deriveCase(9, 4);
  C.Config.NumCores = 8;
  Minimizer::Stats S;
  TrialCase Min = Minimizer().minimize(
      C, [](const TrialCase &X) { return X.Config.NumCores >= 2; }, &S);
  EXPECT_EQ(Min.Config.NumCores, 2u);
  // Everything unrelated shrank to its floor.
  EXPECT_EQ(Min.Seed, 1u);
  EXPECT_EQ(Min.SourceName, miniSourceNames().front());
  EXPECT_EQ(Min.Config.DispatchBatch, 64u);
  EXPECT_EQ(Min.Config.WeakLockTimeout, 500'000'000u);
  EXPECT_GT(S.Tried, 0u);
  EXPECT_GT(S.Adopted, 0u);
  EXPECT_GE(S.Rounds, 2u);
}

TEST(Minimizer, ResultStillFailsThePredicate) {
  auto Pred = [](const TrialCase &X) {
    return X.Config.CheckpointEvery == 1 && X.Config.ReplayJobs >= 2;
  };
  TrialCase C = deriveCase(2, 0);
  C.Config.CheckpointEvery = 1;
  C.Config.ReplayJobs = 7;
  TrialCase Min = Minimizer().minimize(C, Pred);
  EXPECT_TRUE(Pred(Min));
  EXPECT_EQ(Min.Config.ReplayJobs, 2u); // predicate's floor, not 1
}

TEST(Minimizer, FaultOffsetDescendsLogarithmically) {
  TrialCase C = deriveCase(2, 1);
  C.Fault.K = FaultSpec::Kind::FlipBit;
  C.Fault.Offset = 1000;
  TrialCase Min = Minimizer().minimize(
      C, [](const TrialCase &X) { return X.Fault.Offset >= 7; });
  EXPECT_EQ(Min.Fault.Offset, 7u);
}

TEST(Minimizer, IsDeterministic) {
  auto Pred = [](const TrialCase &X) {
    return X.Config.WeakLockTimeout < 10'000 || X.Seed % 3 == 1;
  };
  TrialCase C = deriveCase(13, 2);
  C.Config.WeakLockTimeout = 500;
  Minimizer::Stats S1, S2;
  TrialCase A = Minimizer().minimize(C, Pred, &S1);
  TrialCase B = Minimizer().minimize(C, Pred, &S2);
  expectCasesEqual(A, B);
  EXPECT_EQ(S1.Tried, S2.Tried);
  EXPECT_EQ(S1.Adopted, S2.Adopted);
  EXPECT_EQ(S1.Rounds, S2.Rounds);
}

TEST(Minimizer, ShrinksRealTrialPreservingFailureClass) {
  // A config-validation failure is the cheapest genuine runTrial
  // failure: shrinking must keep the "config" class while simplifying
  // everything else down to the floor.
  TrialCase C = deriveCase(21, 3);
  C.Config.QuantumMin = 0; // invalid: every execution path rejects it
  TrialResult Original = runTrial(C);
  ASSERT_FALSE(Original.Passed);
  ASSERT_EQ(failureClass(Original.Failure), "config");

  Minimizer::Stats S;
  TrialCase Min =
      Minimizer().minimize(C, sameFailurePredicate(Original), &S);
  TrialResult After = runTrial(Min);
  ASSERT_FALSE(After.Passed);
  EXPECT_EQ(failureClass(After.Failure), "config");
  // The quantum knob carries the bug, so the quantum shrink step was
  // rejected; the independent knobs all reached their floors.
  EXPECT_EQ(Min.Config.QuantumMin, 0u);
  EXPECT_EQ(Min.Seed, 1u);
  EXPECT_EQ(Min.SourceName, miniSourceNames().front());
  EXPECT_EQ(Min.Config.NumCores, 1u);
}

//===----------------------------------------------------------------------===//
// Repro files
//===----------------------------------------------------------------------===//

TEST(Repro, RoundTripsEveryField) {
  for (uint64_t I = 0; I < 12; ++I) {
    TrialCase C = deriveCase(31, I);
    auto Back = parseRepro(formatRepro(C));
    ASSERT_TRUE(Back.hasValue()) << Back.error().message();
    expectCasesEqual(C, *Back);
  }
}

TEST(Repro, RoundTripsSourcesWithNewlinesByteExactly) {
  TrialCase C = miniCase(OracleKind::ParallelReplay);
  C.Profile = "int main() { return 0; }\n// trailing\n";
  C.Fault = {FaultSpec::Kind::Truncate, 0xdeadbeefull};
  C.AltDispatchBatch = 128;
  auto Back = parseRepro(formatRepro(C));
  ASSERT_TRUE(Back.hasValue()) << Back.error().message();
  EXPECT_EQ(Back->Source, C.Source);
  EXPECT_EQ(Back->Profile, C.Profile);
  expectCasesEqual(C, *Back);
}

TEST(Repro, FileRoundTrip) {
  TrialCase C = deriveCase(17, 5);
  std::string Path = ::testing::TempDir() + "chimera_stress_repro_rt.txt";
  ASSERT_FALSE(bool(writeReproFile(Path, C)));
  auto Back = readReproFile(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(Back.hasValue()) << Back.error().message();
  expectCasesEqual(C, *Back);
}

TEST(Repro, RejectsDamage) {
  TrialCase C = deriveCase(1, 1);
  std::string Text = formatRepro(C);
  EXPECT_FALSE(parseRepro("nonsense\n").hasValue());
  EXPECT_FALSE(parseRepro(Text + "mystery-key: 3\n").hasValue());
  // Truncating into the source block must not parse.
  EXPECT_FALSE(parseRepro(Text.substr(0, Text.size() / 2)).hasValue());
}

TEST(Repro, ParsedCaseRunsIdentically) {
  TrialCase C = miniCase(OracleKind::RecordReplay);
  auto Back = parseRepro(formatRepro(C));
  ASSERT_TRUE(Back.hasValue());
  TrialResult A = runTrial(C);
  TrialResult B = runTrial(*Back);
  EXPECT_EQ(A.Passed, B.Passed);
  EXPECT_EQ(A.RecordHash, B.RecordHash) << "repro round-trip changed the "
                                           "simulated execution";
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

TEST(Campaign, PinnedSmokeCampaignPasses) {
  CampaignOptions O;
  O.Seeds = 12;
  O.BaseSeed = 1;
  O.Jobs = 2;
  O.ReproDir = ""; // No artifacts from a passing run.
  CampaignReport R = runCampaign(O);
  EXPECT_EQ(R.Trials, 12u);
  EXPECT_TRUE(R.allPassed())
      << R.Failed << " trial(s) failed; first: "
      << (R.Failures.empty() ? std::string("?")
                             : R.Failures.front().Result.Failure);
  uint64_t Sum = 0;
  for (const auto &[Name, Count] : R.TrialsPerOracle)
    Sum += Count;
  EXPECT_EQ(Sum, 12u);
}

TEST(Campaign, ReportIsIdenticalForEveryJobCount) {
  CampaignOptions A;
  A.Seeds = 8;
  A.BaseSeed = 42;
  A.Jobs = 1;
  CampaignOptions B = A;
  B.Jobs = 3;
  CampaignReport RA = runCampaign(A);
  CampaignReport RB = runCampaign(B);
  EXPECT_EQ(RA.toJson(), RB.toJson());
}

TEST(Campaign, PublishesMetrics) {
  obs::Registry Reg;
  CampaignOptions O;
  O.Seeds = 4;
  O.BaseSeed = 3;
  O.Jobs = 1;
  O.Metrics = &Reg;
  CampaignReport R = runCampaign(O);
  obs::Snapshot Snap = Reg.snapshot();
  EXPECT_EQ(uint64_t(Snap.value("stress.trials", 0)), R.Trials);
  EXPECT_EQ(uint64_t(Snap.value("stress.passed", 0)), R.Passed);
  EXPECT_EQ(uint64_t(Snap.value("stress.failed", 0)), R.Failed);
}

TEST(Campaign, JsonReportIsWellFormedEnough) {
  CampaignOptions O;
  O.Seeds = 3;
  O.BaseSeed = 2;
  O.Jobs = 1;
  std::string Json = runCampaign(O).toJson();
  EXPECT_NE(Json.find("\"trials\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"per_oracle\""), std::string::npos);
  EXPECT_NE(Json.find("\"failures\""), std::string::npos);
}
