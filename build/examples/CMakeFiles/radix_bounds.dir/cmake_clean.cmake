file(REMOVE_RECURSE
  "CMakeFiles/radix_bounds.dir/radix_bounds.cpp.o"
  "CMakeFiles/radix_bounds.dir/radix_bounds.cpp.o.d"
  "radix_bounds"
  "radix_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
