# Empty compiler generated dependencies file for radix_bounds.
# This may be replaced when dependencies are built.
