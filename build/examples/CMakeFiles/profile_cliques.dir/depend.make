# Empty dependencies file for profile_cliques.
# This may be replaced when dependencies are built.
