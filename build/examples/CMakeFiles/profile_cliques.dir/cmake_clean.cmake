file(REMOVE_RECURSE
  "CMakeFiles/profile_cliques.dir/profile_cliques.cpp.o"
  "CMakeFiles/profile_cliques.dir/profile_cliques.cpp.o.d"
  "profile_cliques"
  "profile_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
