# Empty dependencies file for chimera_analysis.
# This may be replaced when dependencies are built.
