file(REMOVE_RECURSE
  "libchimera_analysis.a"
)
