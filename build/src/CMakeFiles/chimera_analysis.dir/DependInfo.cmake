
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CallGraph.cpp" "src/CMakeFiles/chimera_analysis.dir/analysis/CallGraph.cpp.o" "gcc" "src/CMakeFiles/chimera_analysis.dir/analysis/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/chimera_analysis.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/chimera_analysis.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Escape.cpp" "src/CMakeFiles/chimera_analysis.dir/analysis/Escape.cpp.o" "gcc" "src/CMakeFiles/chimera_analysis.dir/analysis/Escape.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/chimera_analysis.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/chimera_analysis.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/PointsTo.cpp" "src/CMakeFiles/chimera_analysis.dir/analysis/PointsTo.cpp.o" "gcc" "src/CMakeFiles/chimera_analysis.dir/analysis/PointsTo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
