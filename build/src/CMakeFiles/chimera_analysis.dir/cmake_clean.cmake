file(REMOVE_RECURSE
  "CMakeFiles/chimera_analysis.dir/analysis/CallGraph.cpp.o"
  "CMakeFiles/chimera_analysis.dir/analysis/CallGraph.cpp.o.d"
  "CMakeFiles/chimera_analysis.dir/analysis/Dominators.cpp.o"
  "CMakeFiles/chimera_analysis.dir/analysis/Dominators.cpp.o.d"
  "CMakeFiles/chimera_analysis.dir/analysis/Escape.cpp.o"
  "CMakeFiles/chimera_analysis.dir/analysis/Escape.cpp.o.d"
  "CMakeFiles/chimera_analysis.dir/analysis/LoopInfo.cpp.o"
  "CMakeFiles/chimera_analysis.dir/analysis/LoopInfo.cpp.o.d"
  "CMakeFiles/chimera_analysis.dir/analysis/PointsTo.cpp.o"
  "CMakeFiles/chimera_analysis.dir/analysis/PointsTo.cpp.o.d"
  "libchimera_analysis.a"
  "libchimera_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
