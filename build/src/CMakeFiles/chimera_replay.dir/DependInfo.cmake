
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replay/DeterminismChecker.cpp" "src/CMakeFiles/chimera_replay.dir/replay/DeterminismChecker.cpp.o" "gcc" "src/CMakeFiles/chimera_replay.dir/replay/DeterminismChecker.cpp.o.d"
  "/root/repo/src/replay/LogCodec.cpp" "src/CMakeFiles/chimera_replay.dir/replay/LogCodec.cpp.o" "gcc" "src/CMakeFiles/chimera_replay.dir/replay/LogCodec.cpp.o.d"
  "/root/repo/src/replay/Recorder.cpp" "src/CMakeFiles/chimera_replay.dir/replay/Recorder.cpp.o" "gcc" "src/CMakeFiles/chimera_replay.dir/replay/Recorder.cpp.o.d"
  "/root/repo/src/replay/Replayer.cpp" "src/CMakeFiles/chimera_replay.dir/replay/Replayer.cpp.o" "gcc" "src/CMakeFiles/chimera_replay.dir/replay/Replayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
