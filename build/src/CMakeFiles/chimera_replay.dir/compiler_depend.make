# Empty compiler generated dependencies file for chimera_replay.
# This may be replaced when dependencies are built.
