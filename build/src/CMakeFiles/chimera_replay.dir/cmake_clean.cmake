file(REMOVE_RECURSE
  "CMakeFiles/chimera_replay.dir/replay/DeterminismChecker.cpp.o"
  "CMakeFiles/chimera_replay.dir/replay/DeterminismChecker.cpp.o.d"
  "CMakeFiles/chimera_replay.dir/replay/LogCodec.cpp.o"
  "CMakeFiles/chimera_replay.dir/replay/LogCodec.cpp.o.d"
  "CMakeFiles/chimera_replay.dir/replay/Recorder.cpp.o"
  "CMakeFiles/chimera_replay.dir/replay/Recorder.cpp.o.d"
  "CMakeFiles/chimera_replay.dir/replay/Replayer.cpp.o"
  "CMakeFiles/chimera_replay.dir/replay/Replayer.cpp.o.d"
  "libchimera_replay.a"
  "libchimera_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
