file(REMOVE_RECURSE
  "libchimera_replay.a"
)
