file(REMOVE_RECURSE
  "libchimera_runtime.a"
)
