
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/CostModel.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/CostModel.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/CostModel.cpp.o.d"
  "/root/repo/src/runtime/ExecutionLog.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/ExecutionLog.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/ExecutionLog.cpp.o.d"
  "/root/repo/src/runtime/Interpreter.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/Interpreter.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/Interpreter.cpp.o.d"
  "/root/repo/src/runtime/Machine.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/Machine.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/Machine.cpp.o.d"
  "/root/repo/src/runtime/Memory.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/Memory.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/Memory.cpp.o.d"
  "/root/repo/src/runtime/Scheduler.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/Scheduler.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/Scheduler.cpp.o.d"
  "/root/repo/src/runtime/SyncObjects.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/SyncObjects.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/SyncObjects.cpp.o.d"
  "/root/repo/src/runtime/Thread.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/Thread.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/Thread.cpp.o.d"
  "/root/repo/src/runtime/VectorClock.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/VectorClock.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/VectorClock.cpp.o.d"
  "/root/repo/src/runtime/WeakLock.cpp" "src/CMakeFiles/chimera_runtime.dir/runtime/WeakLock.cpp.o" "gcc" "src/CMakeFiles/chimera_runtime.dir/runtime/WeakLock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
