# Empty compiler generated dependencies file for chimera_runtime.
# This may be replaced when dependencies are built.
