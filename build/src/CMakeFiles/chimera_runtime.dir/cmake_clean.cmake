file(REMOVE_RECURSE
  "CMakeFiles/chimera_runtime.dir/runtime/CostModel.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/CostModel.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/ExecutionLog.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/ExecutionLog.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/Interpreter.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/Interpreter.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/Machine.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/Machine.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/Memory.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/Memory.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/Scheduler.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/Scheduler.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/SyncObjects.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/SyncObjects.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/Thread.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/Thread.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/VectorClock.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/VectorClock.cpp.o.d"
  "CMakeFiles/chimera_runtime.dir/runtime/WeakLock.cpp.o"
  "CMakeFiles/chimera_runtime.dir/runtime/WeakLock.cpp.o.d"
  "libchimera_runtime.a"
  "libchimera_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
