
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/DynamicDetector.cpp" "src/CMakeFiles/chimera_race.dir/race/DynamicDetector.cpp.o" "gcc" "src/CMakeFiles/chimera_race.dir/race/DynamicDetector.cpp.o.d"
  "/root/repo/src/race/Lockset.cpp" "src/CMakeFiles/chimera_race.dir/race/Lockset.cpp.o" "gcc" "src/CMakeFiles/chimera_race.dir/race/Lockset.cpp.o.d"
  "/root/repo/src/race/RelayDetector.cpp" "src/CMakeFiles/chimera_race.dir/race/RelayDetector.cpp.o" "gcc" "src/CMakeFiles/chimera_race.dir/race/RelayDetector.cpp.o.d"
  "/root/repo/src/race/Summary.cpp" "src/CMakeFiles/chimera_race.dir/race/Summary.cpp.o" "gcc" "src/CMakeFiles/chimera_race.dir/race/Summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
