# Empty dependencies file for chimera_race.
# This may be replaced when dependencies are built.
