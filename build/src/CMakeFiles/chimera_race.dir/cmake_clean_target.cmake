file(REMOVE_RECURSE
  "libchimera_race.a"
)
