file(REMOVE_RECURSE
  "CMakeFiles/chimera_race.dir/race/DynamicDetector.cpp.o"
  "CMakeFiles/chimera_race.dir/race/DynamicDetector.cpp.o.d"
  "CMakeFiles/chimera_race.dir/race/Lockset.cpp.o"
  "CMakeFiles/chimera_race.dir/race/Lockset.cpp.o.d"
  "CMakeFiles/chimera_race.dir/race/RelayDetector.cpp.o"
  "CMakeFiles/chimera_race.dir/race/RelayDetector.cpp.o.d"
  "CMakeFiles/chimera_race.dir/race/Summary.cpp.o"
  "CMakeFiles/chimera_race.dir/race/Summary.cpp.o.d"
  "libchimera_race.a"
  "libchimera_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
