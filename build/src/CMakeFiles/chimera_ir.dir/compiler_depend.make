# Empty compiler generated dependencies file for chimera_ir.
# This may be replaced when dependencies are built.
