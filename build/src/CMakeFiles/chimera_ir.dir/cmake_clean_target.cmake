file(REMOVE_RECURSE
  "libchimera_ir.a"
)
