file(REMOVE_RECURSE
  "CMakeFiles/chimera_ir.dir/ir/Function.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/Function.cpp.o.d"
  "CMakeFiles/chimera_ir.dir/ir/IRBuilder.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/IRBuilder.cpp.o.d"
  "CMakeFiles/chimera_ir.dir/ir/Instruction.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/Instruction.cpp.o.d"
  "CMakeFiles/chimera_ir.dir/ir/Module.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/Module.cpp.o.d"
  "CMakeFiles/chimera_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/chimera_ir.dir/ir/Type.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/Type.cpp.o.d"
  "CMakeFiles/chimera_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/chimera_ir.dir/ir/Verifier.cpp.o.d"
  "libchimera_ir.a"
  "libchimera_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
