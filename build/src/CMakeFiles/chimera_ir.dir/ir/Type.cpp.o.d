src/CMakeFiles/chimera_ir.dir/ir/Type.cpp.o: /root/repo/src/ir/Type.cpp \
 /usr/include/stdc-predef.h /root/repo/src/ir/Type.h
