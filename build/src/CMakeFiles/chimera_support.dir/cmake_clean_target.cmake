file(REMOVE_RECURSE
  "libchimera_support.a"
)
