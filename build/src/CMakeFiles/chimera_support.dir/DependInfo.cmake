
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Compressor.cpp" "src/CMakeFiles/chimera_support.dir/support/Compressor.cpp.o" "gcc" "src/CMakeFiles/chimera_support.dir/support/Compressor.cpp.o.d"
  "/root/repo/src/support/Graph.cpp" "src/CMakeFiles/chimera_support.dir/support/Graph.cpp.o" "gcc" "src/CMakeFiles/chimera_support.dir/support/Graph.cpp.o.d"
  "/root/repo/src/support/Hash.cpp" "src/CMakeFiles/chimera_support.dir/support/Hash.cpp.o" "gcc" "src/CMakeFiles/chimera_support.dir/support/Hash.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/chimera_support.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/chimera_support.dir/support/Rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
