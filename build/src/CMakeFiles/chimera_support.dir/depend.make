# Empty dependencies file for chimera_support.
# This may be replaced when dependencies are built.
