file(REMOVE_RECURSE
  "CMakeFiles/chimera_support.dir/support/Compressor.cpp.o"
  "CMakeFiles/chimera_support.dir/support/Compressor.cpp.o.d"
  "CMakeFiles/chimera_support.dir/support/Graph.cpp.o"
  "CMakeFiles/chimera_support.dir/support/Graph.cpp.o.d"
  "CMakeFiles/chimera_support.dir/support/Hash.cpp.o"
  "CMakeFiles/chimera_support.dir/support/Hash.cpp.o.d"
  "CMakeFiles/chimera_support.dir/support/Rng.cpp.o"
  "CMakeFiles/chimera_support.dir/support/Rng.cpp.o.d"
  "libchimera_support.a"
  "libchimera_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
