file(REMOVE_RECURSE
  "CMakeFiles/chimera_profile.dir/profile/CliqueAnalysis.cpp.o"
  "CMakeFiles/chimera_profile.dir/profile/CliqueAnalysis.cpp.o.d"
  "CMakeFiles/chimera_profile.dir/profile/ConcurrencyGraph.cpp.o"
  "CMakeFiles/chimera_profile.dir/profile/ConcurrencyGraph.cpp.o.d"
  "CMakeFiles/chimera_profile.dir/profile/Profiler.cpp.o"
  "CMakeFiles/chimera_profile.dir/profile/Profiler.cpp.o.d"
  "libchimera_profile.a"
  "libchimera_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
