file(REMOVE_RECURSE
  "libchimera_profile.a"
)
