# Empty dependencies file for chimera_profile.
# This may be replaced when dependencies are built.
