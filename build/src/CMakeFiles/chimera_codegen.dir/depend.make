# Empty dependencies file for chimera_codegen.
# This may be replaced when dependencies are built.
