file(REMOVE_RECURSE
  "CMakeFiles/chimera_codegen.dir/codegen/CodeGen.cpp.o"
  "CMakeFiles/chimera_codegen.dir/codegen/CodeGen.cpp.o.d"
  "libchimera_codegen.a"
  "libchimera_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
