file(REMOVE_RECURSE
  "libchimera_codegen.a"
)
