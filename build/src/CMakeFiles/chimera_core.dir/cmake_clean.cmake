file(REMOVE_RECURSE
  "CMakeFiles/chimera_core.dir/core/Options.cpp.o"
  "CMakeFiles/chimera_core.dir/core/Options.cpp.o.d"
  "CMakeFiles/chimera_core.dir/core/Pipeline.cpp.o"
  "CMakeFiles/chimera_core.dir/core/Pipeline.cpp.o.d"
  "libchimera_core.a"
  "libchimera_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
