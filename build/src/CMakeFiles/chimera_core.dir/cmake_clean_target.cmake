file(REMOVE_RECURSE
  "libchimera_core.a"
)
