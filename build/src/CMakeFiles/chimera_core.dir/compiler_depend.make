# Empty compiler generated dependencies file for chimera_core.
# This may be replaced when dependencies are built.
