file(REMOVE_RECURSE
  "CMakeFiles/chimera_workloads.dir/workloads/Workloads.cpp.o"
  "CMakeFiles/chimera_workloads.dir/workloads/Workloads.cpp.o.d"
  "libchimera_workloads.a"
  "libchimera_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
