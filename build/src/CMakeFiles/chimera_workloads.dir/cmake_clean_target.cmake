file(REMOVE_RECURSE
  "libchimera_workloads.a"
)
