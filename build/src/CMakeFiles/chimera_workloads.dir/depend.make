# Empty dependencies file for chimera_workloads.
# This may be replaced when dependencies are built.
