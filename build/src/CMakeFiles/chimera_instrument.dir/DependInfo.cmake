
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instrument/Instrumenter.cpp" "src/CMakeFiles/chimera_instrument.dir/instrument/Instrumenter.cpp.o" "gcc" "src/CMakeFiles/chimera_instrument.dir/instrument/Instrumenter.cpp.o.d"
  "/root/repo/src/instrument/Plan.cpp" "src/CMakeFiles/chimera_instrument.dir/instrument/Plan.cpp.o" "gcc" "src/CMakeFiles/chimera_instrument.dir/instrument/Plan.cpp.o.d"
  "/root/repo/src/instrument/Planner.cpp" "src/CMakeFiles/chimera_instrument.dir/instrument/Planner.cpp.o" "gcc" "src/CMakeFiles/chimera_instrument.dir/instrument/Planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_race.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
