file(REMOVE_RECURSE
  "CMakeFiles/chimera_instrument.dir/instrument/Instrumenter.cpp.o"
  "CMakeFiles/chimera_instrument.dir/instrument/Instrumenter.cpp.o.d"
  "CMakeFiles/chimera_instrument.dir/instrument/Plan.cpp.o"
  "CMakeFiles/chimera_instrument.dir/instrument/Plan.cpp.o.d"
  "CMakeFiles/chimera_instrument.dir/instrument/Planner.cpp.o"
  "CMakeFiles/chimera_instrument.dir/instrument/Planner.cpp.o.d"
  "libchimera_instrument.a"
  "libchimera_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
