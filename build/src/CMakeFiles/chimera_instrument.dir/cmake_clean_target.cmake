file(REMOVE_RECURSE
  "libchimera_instrument.a"
)
