# Empty compiler generated dependencies file for chimera_instrument.
# This may be replaced when dependencies are built.
