# Empty compiler generated dependencies file for chimera_lang.
# This may be replaced when dependencies are built.
