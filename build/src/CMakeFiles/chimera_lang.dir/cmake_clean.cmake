file(REMOVE_RECURSE
  "CMakeFiles/chimera_lang.dir/lang/Ast.cpp.o"
  "CMakeFiles/chimera_lang.dir/lang/Ast.cpp.o.d"
  "CMakeFiles/chimera_lang.dir/lang/Lexer.cpp.o"
  "CMakeFiles/chimera_lang.dir/lang/Lexer.cpp.o.d"
  "CMakeFiles/chimera_lang.dir/lang/Parser.cpp.o"
  "CMakeFiles/chimera_lang.dir/lang/Parser.cpp.o.d"
  "CMakeFiles/chimera_lang.dir/lang/Sema.cpp.o"
  "CMakeFiles/chimera_lang.dir/lang/Sema.cpp.o.d"
  "libchimera_lang.a"
  "libchimera_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
