file(REMOVE_RECURSE
  "libchimera_lang.a"
)
