
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/BoundsAnalysis.cpp" "src/CMakeFiles/chimera_bounds.dir/bounds/BoundsAnalysis.cpp.o" "gcc" "src/CMakeFiles/chimera_bounds.dir/bounds/BoundsAnalysis.cpp.o.d"
  "/root/repo/src/bounds/ConstraintSystem.cpp" "src/CMakeFiles/chimera_bounds.dir/bounds/ConstraintSystem.cpp.o" "gcc" "src/CMakeFiles/chimera_bounds.dir/bounds/ConstraintSystem.cpp.o.d"
  "/root/repo/src/bounds/FourierMotzkin.cpp" "src/CMakeFiles/chimera_bounds.dir/bounds/FourierMotzkin.cpp.o" "gcc" "src/CMakeFiles/chimera_bounds.dir/bounds/FourierMotzkin.cpp.o.d"
  "/root/repo/src/bounds/SymbolicExpr.cpp" "src/CMakeFiles/chimera_bounds.dir/bounds/SymbolicExpr.cpp.o" "gcc" "src/CMakeFiles/chimera_bounds.dir/bounds/SymbolicExpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
