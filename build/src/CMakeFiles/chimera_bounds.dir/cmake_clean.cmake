file(REMOVE_RECURSE
  "CMakeFiles/chimera_bounds.dir/bounds/BoundsAnalysis.cpp.o"
  "CMakeFiles/chimera_bounds.dir/bounds/BoundsAnalysis.cpp.o.d"
  "CMakeFiles/chimera_bounds.dir/bounds/ConstraintSystem.cpp.o"
  "CMakeFiles/chimera_bounds.dir/bounds/ConstraintSystem.cpp.o.d"
  "CMakeFiles/chimera_bounds.dir/bounds/FourierMotzkin.cpp.o"
  "CMakeFiles/chimera_bounds.dir/bounds/FourierMotzkin.cpp.o.d"
  "CMakeFiles/chimera_bounds.dir/bounds/SymbolicExpr.cpp.o"
  "CMakeFiles/chimera_bounds.dir/bounds/SymbolicExpr.cpp.o.d"
  "libchimera_bounds.a"
  "libchimera_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
