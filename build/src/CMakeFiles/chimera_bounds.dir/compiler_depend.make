# Empty compiler generated dependencies file for chimera_bounds.
# This may be replaced when dependencies are built.
