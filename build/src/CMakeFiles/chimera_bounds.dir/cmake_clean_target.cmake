file(REMOVE_RECURSE
  "libchimera_bounds.a"
)
