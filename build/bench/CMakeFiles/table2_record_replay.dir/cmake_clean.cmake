file(REMOVE_RECURSE
  "CMakeFiles/table2_record_replay.dir/table2_record_replay.cpp.o"
  "CMakeFiles/table2_record_replay.dir/table2_record_replay.cpp.o.d"
  "table2_record_replay"
  "table2_record_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_record_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
