# Empty dependencies file for table2_record_replay.
# This may be replaced when dependencies are built.
