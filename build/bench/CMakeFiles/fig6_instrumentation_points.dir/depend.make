# Empty dependencies file for fig6_instrumentation_points.
# This may be replaced when dependencies are built.
