file(REMOVE_RECURSE
  "CMakeFiles/fig6_instrumentation_points.dir/fig6_instrumentation_points.cpp.o"
  "CMakeFiles/fig6_instrumentation_points.dir/fig6_instrumentation_points.cpp.o.d"
  "fig6_instrumentation_points"
  "fig6_instrumentation_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_instrumentation_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
