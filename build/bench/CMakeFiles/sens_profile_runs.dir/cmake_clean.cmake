file(REMOVE_RECURSE
  "CMakeFiles/sens_profile_runs.dir/sens_profile_runs.cpp.o"
  "CMakeFiles/sens_profile_runs.dir/sens_profile_runs.cpp.o.d"
  "sens_profile_runs"
  "sens_profile_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_profile_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
