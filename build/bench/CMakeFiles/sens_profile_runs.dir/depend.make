# Empty dependencies file for sens_profile_runs.
# This may be replaced when dependencies are built.
