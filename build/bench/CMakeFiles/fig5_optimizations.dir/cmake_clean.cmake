file(REMOVE_RECURSE
  "CMakeFiles/fig5_optimizations.dir/fig5_optimizations.cpp.o"
  "CMakeFiles/fig5_optimizations.dir/fig5_optimizations.cpp.o.d"
  "fig5_optimizations"
  "fig5_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
