# Empty dependencies file for fig5_optimizations.
# This may be replaced when dependencies are built.
