file(REMOVE_RECURSE
  "CMakeFiles/chimera-cli.dir/chimera_cli.cpp.o"
  "CMakeFiles/chimera-cli.dir/chimera_cli.cpp.o.d"
  "chimera"
  "chimera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
