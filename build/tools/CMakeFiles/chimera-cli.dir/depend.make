# Empty dependencies file for chimera-cli.
# This may be replaced when dependencies are built.
