file(REMOVE_RECURSE
  "CMakeFiles/record_replay_test.dir/record_replay_test.cpp.o"
  "CMakeFiles/record_replay_test.dir/record_replay_test.cpp.o.d"
  "record_replay_test"
  "record_replay_test.pdb"
  "record_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
