# Empty compiler generated dependencies file for record_replay_test.
# This may be replaced when dependencies are built.
