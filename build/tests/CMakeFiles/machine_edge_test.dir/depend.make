# Empty dependencies file for machine_edge_test.
# This may be replaced when dependencies are built.
