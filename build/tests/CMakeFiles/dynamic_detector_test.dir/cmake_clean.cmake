file(REMOVE_RECURSE
  "CMakeFiles/dynamic_detector_test.dir/dynamic_detector_test.cpp.o"
  "CMakeFiles/dynamic_detector_test.dir/dynamic_detector_test.cpp.o.d"
  "dynamic_detector_test"
  "dynamic_detector_test.pdb"
  "dynamic_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
