# Empty dependencies file for race_static_test.
# This may be replaced when dependencies are built.
