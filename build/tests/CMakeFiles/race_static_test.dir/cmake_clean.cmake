file(REMOVE_RECURSE
  "CMakeFiles/race_static_test.dir/race_static_test.cpp.o"
  "CMakeFiles/race_static_test.dir/race_static_test.cpp.o.d"
  "race_static_test"
  "race_static_test.pdb"
  "race_static_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_static_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
