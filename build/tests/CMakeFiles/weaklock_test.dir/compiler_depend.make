# Empty compiler generated dependencies file for weaklock_test.
# This may be replaced when dependencies are built.
