file(REMOVE_RECURSE
  "CMakeFiles/weaklock_test.dir/weaklock_test.cpp.o"
  "CMakeFiles/weaklock_test.dir/weaklock_test.cpp.o.d"
  "weaklock_test"
  "weaklock_test.pdb"
  "weaklock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weaklock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
