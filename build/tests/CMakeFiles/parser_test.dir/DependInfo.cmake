
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/parser_test.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/parser_test.dir/parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chimera_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_race.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chimera_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
