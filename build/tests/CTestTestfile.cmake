# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_sync_test[1]_include.cmake")
include("/root/repo/build/tests/machine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/race_static_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/weaklock_test[1]_include.cmake")
include("/root/repo/build/tests/record_replay_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_detector_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
